package spec

import (
	"fmt"
	"strings"

	"bismarck/internal/engine"
)

// Parse parses one statement of the declarative grammar (see the package
// doc and README for the EBNF). Both the extended-SQL forms and the legacy
// SELECT Func('arg', ...) calls are accepted; legacy calls lower into the
// same Statement AST.
func Parse(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Allow one trailing semicolon.
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("trailing input after statement: %s", p.peek())
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("spec: %s", fmt.Sprintf(format, args...))
}

// keyword reports whether the next token is the given keyword (idents are
// case-insensitive) and consumes it when it is.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

// accept consumes the next token when it is the given symbol.
func (p *parser) accept(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, found %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.accept(sym) {
		return p.errf("expected %q, found %s", sym, p.peek())
	}
	return nil
}

// ident consumes and returns an identifier.
func (p *parser) ident(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected %s, found %s", what, t)
	}
	p.i++
	return t.text, nil
}

// name consumes an identifier or a quoted string (table/model names may be
// written either way).
func (p *parser) name(what string) (string, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.i++
		return t.text, nil
	case tokString:
		p.i++
		return t.str, nil
	}
	return "", p.errf("expected %s, found %s", what, t)
}

// literal consumes one literal value: a string, a (signed) number, or a
// bare word.
func (p *parser) literal() (Literal, error) {
	t := p.peek()
	switch {
	case t.kind == tokString:
		p.i++
		return StringLit(t.str), nil
	case t.kind == tokNumber:
		p.i++
		if t.isInt {
			return IntLit(t.ival), nil
		}
		return FloatLit(t.num), nil
	case t.kind == tokSymbol && (t.text == "-" || t.text == "+"):
		sign := t.text
		p.i++
		num := p.peek()
		if num.kind != tokNumber {
			return Literal{}, p.errf("expected number after %q, found %s", sign, num)
		}
		p.i++
		if sign == "-" {
			if num.isInt {
				return IntLit(-num.ival), nil
			}
			return FloatLit(-num.num), nil
		}
		if num.isInt {
			return IntLit(num.ival), nil
		}
		return FloatLit(num.num), nil
	case t.kind == tokIdent:
		p.i++
		return IdentLit(t.text), nil
	}
	return Literal{}, p.errf("expected a value, found %s", t)
}

// statement parses one full statement.
func (p *parser) statement() (*Statement, error) {
	switch {
	case p.keyword("SHOW"):
		switch {
		case p.keyword("TABLES"):
			return &Statement{Kind: KindShowTables}, nil
		case p.keyword("TASKS"):
			return &Statement{Kind: KindShowTasks}, nil
		case p.keyword("MODELS"):
			return &Statement{Kind: KindShowModels}, nil
		case p.keyword("JOBS"):
			return &Statement{Kind: KindShowJobs}, nil
		case p.keyword("SHARDS"):
			return p.showShards()
		case p.keyword("SCRUB"):
			return &Statement{Kind: KindShowScrub}, nil
		case p.keyword("SERVING"):
			return &Statement{Kind: KindShowServing}, nil
		}
		return nil, p.errf("expected TABLES, TASKS, MODELS, JOBS, SHARDS, SCRUB or SERVING after SHOW, found %s", p.peek())
	case p.keyword("WAIT"):
		return p.jobStatement(KindWaitJob, "WAIT")
	case p.keyword("CANCEL"):
		return p.jobStatement(KindCancelJob, "CANCEL")
	case p.keyword("CHECK"):
		return p.checkTable()
	case p.keyword("SELECT"):
		return p.selectStatement()
	case p.keyword("PREDICT"):
		return p.pointPredict()
	}
	return nil, p.errf("expected SELECT, SHOW, CHECK, WAIT, CANCEL or PREDICT, found %s", p.peek())
}

// pointPredict parses the inline scoring forms
//
//	PREDICT (v1, v2, ...) USING model
//	PREDICT VALUES (v1, ...), (v2, ...) USING model
//
// The values are numeric literals — the feature tuple is in the statement,
// so scoring needs no table, no view, and no materialization. The batched
// VALUES form scores every tuple against one model snapshot.
func (p *parser) pointPredict() (*Statement, error) {
	st := &Statement{Kind: KindPointPredict}
	if p.keyword("VALUES") {
		for {
			vals, err := p.pointTuple()
			if err != nil {
				return nil, err
			}
			st.Points = append(st.Points, vals)
			if len(st.Points) > MaxPointBatch {
				return nil, p.errf("PREDICT VALUES batch exceeds %d tuples", MaxPointBatch)
			}
			if !p.accept(",") {
				break
			}
		}
	} else {
		vals, err := p.pointTuple()
		if err != nil {
			return nil, err
		}
		st.Points = [][]float64{vals}
	}
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	m, err := p.name("a model name after USING")
	if err != nil {
		return nil, err
	}
	st.Model = m
	return st, p.validate(st)
}

// pointTuple parses one parenthesized numeric tuple of a point-PREDICT.
func (p *parser) pointTuple() ([]float64, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.accept(")") {
		return nil, p.errf("PREDICT needs at least one value per tuple (empty tuple)")
	}
	var vals []float64
	for {
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		if lit.Kind != LitNumber {
			return nil, p.errf("PREDICT tuples take numeric values, found %s", lit)
		}
		vals = append(vals, lit.Num)
		if len(vals) > MaxPointValues {
			return nil, p.errf("PREDICT tuple exceeds %d values", MaxPointValues)
		}
		if p.accept(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return vals, nil
	}
}

// showShards parses the tail of SHOW SHARDS <table> [k]: the table whose
// shard distribution to report and an optional positive shard count.
func (p *parser) showShards() (*Statement, error) {
	name, err := p.name("a table name after SHOW SHARDS")
	if err != nil {
		return nil, err
	}
	st := &Statement{Kind: KindShowShards, From: name}
	if t := p.peek(); t.kind == tokNumber {
		if !t.isInt {
			return nil, p.errf("SHOW SHARDS wants an integer shard count, found %s", t)
		}
		if err := ValidateShardCount(t.ival); err != nil {
			return nil, fmt.Errorf("SHOW SHARDS: %w", err)
		}
		p.i++
		st.ShardCount = t.ival
	}
	return st, p.validate(st)
}

// checkTable parses the tail of CHECK TABLE <table>: an on-demand scrub
// of every page of the table's heap.
func (p *parser) checkTable() (*Statement, error) {
	if !p.keyword("TABLE") {
		return nil, p.errf("expected TABLE after CHECK, found %s", p.peek())
	}
	name, err := p.name("a table name after CHECK TABLE")
	if err != nil {
		return nil, err
	}
	st := &Statement{Kind: KindCheckTable, From: name}
	return st, p.validate(st)
}

// jobStatement parses the tail of WAIT JOB <id> / CANCEL JOB <id>.
func (p *parser) jobStatement(kind Kind, verb string) (*Statement, error) {
	if !p.keyword("JOB") {
		return nil, p.errf("expected JOB after %s, found %s", verb, p.peek())
	}
	t := p.peek()
	if t.kind != tokNumber || !t.isInt || t.ival < 0 {
		return nil, p.errf("expected a job id after %s JOB, found %s", verb, t)
	}
	p.i++
	return &Statement{Kind: kind, JobID: t.ival}, nil
}

// selectStatement parses everything after SELECT: either a legacy function
// call or the extended select + TO clause.
func (p *parser) selectStatement() (*Statement, error) {
	// Legacy form: SELECT Ident ( args ) ;
	if p.peek().kind == tokIdent && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
		return p.legacyCall()
	}

	st := &Statement{}
	// Column list: * or ident[, ident...].
	if p.accept("*") {
		st.Select = []string{"*"}
	} else {
		for {
			col, err := p.ident("a column name")
			if err != nil {
				return nil, err
			}
			st.Select = append(st.Select, col)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.name("a table name")
	if err != nil {
		return nil, err
	}
	st.From = tbl

	if p.keyword("WHERE") {
		if err := p.whereClause(st); err != nil {
			return nil, err
		}
	}

	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	switch {
	case p.keyword("TRAIN"):
		st.Kind = KindTrain
		task, err := p.name("a task name")
		if err != nil {
			return nil, err
		}
		st.Task = strings.ToLower(task)
	case p.keyword("PREDICT"):
		st.Kind = KindPredict
	case p.keyword("EVALUATE"):
		st.Kind = KindEvaluate
	default:
		return nil, p.errf("expected TRAIN, PREDICT or EVALUATE after TO, found %s", p.peek())
	}

	if err := p.tailClauses(st); err != nil {
		return nil, err
	}
	return st, p.validate(st)
}

// tailClauses parses the trailing WITH / COLUMN / LABEL / USING / INTO
// clauses in any order, each at most once.
func (p *parser) tailClauses(st *Statement) error {
	seen := map[string]bool{}
	once := func(kw string) error {
		if seen[kw] {
			return p.errf("duplicate %s clause", kw)
		}
		seen[kw] = true
		return nil
	}
	for {
		switch {
		case p.keyword("WITH"):
			if err := once("WITH"); err != nil {
				return err
			}
			withKeys := map[string]bool{}
			for {
				key, err := p.ident("a parameter name")
				if err != nil {
					return err
				}
				if err := p.expectSymbol("="); err != nil {
					return err
				}
				val, err := p.literal()
				if err != nil {
					return err
				}
				key = strings.ToLower(key)
				if withKeys[key] {
					return p.errf("duplicate WITH parameter %q", key)
				}
				withKeys[key] = true
				st.With = append(st.With, Param{Key: key, Val: val})
				if !p.accept(",") {
					break
				}
			}
		case p.keyword("COLUMN") || p.keyword("COLUMNS"):
			if err := once("COLUMN"); err != nil {
				return err
			}
			for {
				col, err := p.ident("a column name")
				if err != nil {
					return err
				}
				st.Columns = append(st.Columns, col)
				if !p.accept(",") {
					break
				}
			}
		case p.keyword("LABEL"):
			if err := once("LABEL"); err != nil {
				return err
			}
			col, err := p.name("a label column")
			if err != nil {
				return err
			}
			st.Label = col
		case p.keyword("USING"):
			if err := once("USING"); err != nil {
				return err
			}
			m, err := p.name("a model name")
			if err != nil {
				return err
			}
			st.Model = m
		case p.keyword("INTO"):
			if err := once("INTO"); err != nil {
				return err
			}
			m, err := p.name("a destination name")
			if err != nil {
				return err
			}
			st.Into = m
		case p.keyword("ASYNC"):
			if err := once("ASYNC"); err != nil {
				return err
			}
			st.Async = true
		case p.keyword("VALUES"):
			// A near-miss worth a pointed message: inline tuples belong to
			// the point form, not the table form.
			return p.errf("VALUES tuples belong to the inline point form — PREDICT VALUES (...) USING <model> — not to TO %s", st.Kind)
		default:
			return nil
		}
	}
}

// whereClause parses predicate [AND predicate]*.
func (p *parser) whereClause(st *Statement) error {
	for {
		col, err := p.ident("a column name in WHERE")
		if err != nil {
			return err
		}
		t := p.peek()
		if t.kind != tokSymbol {
			return p.errf("expected a comparison operator, found %s", t)
		}
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.i++
		default:
			return p.errf("unsupported operator %q in WHERE", t.text)
		}
		val, err := p.literal()
		if err != nil {
			return err
		}
		st.Where = append(st.Where, Predicate{Col: col, Op: t.text, Val: val})
		if !p.keyword("AND") {
			return nil
		}
	}
}

// validate checks clause/kind combinations the clause loop cannot.
func (p *parser) validate(st *Statement) error {
	if err := ValidateNames(st); err != nil {
		return err
	}
	switch st.Kind {
	case KindTrain:
		if st.Into == "" {
			return p.errf("TO TRAIN requires INTO <model>")
		}
		if st.Model != "" {
			return p.errf("TO TRAIN does not take USING")
		}
	case KindPredict, KindEvaluate:
		if st.Model == "" {
			return p.errf("TO %s requires USING <model>", st.Kind)
		}
		if st.Kind == KindEvaluate && st.Into != "" {
			return p.errf("TO EVALUATE does not take INTO")
		}
		if st.Async {
			return p.errf("ASYNC applies to TO TRAIN only")
		}
	case KindPointPredict:
		if err := ValidatePoints(st.Points); err != nil {
			return err
		}
	}
	return nil
}

// Caps on the inline point-PREDICT forms: statements arrive from untrusted
// network clients once a catalog is served over TCP, and the 1 MiB
// statement cap alone would still admit a half-million-value tuple.
const (
	// MaxPointValues bounds one tuple's arity.
	MaxPointValues = 4096
	// MaxPointBatch bounds the VALUES tuple count of one statement.
	MaxPointBatch = 1024
)

// ValidatePoints enforces the shape rules of the inline point-PREDICT
// forms. The parser runs it, and — Statement being an exported type — the
// session and serving layers run it again on every execution path, so a
// programmatically built statement faces the same rules.
func ValidatePoints(points [][]float64) error {
	if len(points) == 0 {
		return fmt.Errorf("spec: PREDICT needs at least one value tuple")
	}
	if len(points) > MaxPointBatch {
		return fmt.Errorf("spec: PREDICT VALUES batch of %d exceeds the limit of %d", len(points), MaxPointBatch)
	}
	arity := len(points[0])
	for i, vals := range points {
		if len(vals) == 0 {
			return fmt.Errorf("spec: PREDICT tuple %d is empty", i+1)
		}
		if len(vals) > MaxPointValues {
			return fmt.Errorf("spec: PREDICT tuple %d has %d values, limit is %d", i+1, len(vals), MaxPointValues)
		}
		if len(vals) != arity {
			return fmt.Errorf("spec: PREDICT VALUES arity mismatch: tuple %d has %d values, tuple 1 has %d",
				i+1, len(vals), arity)
		}
	}
	return nil
}

// ValidateNames enforces the statement-layer name rules. The parser runs
// it for early errors, and the session layer runs it again on every
// Run — Statement is an exported type, so a programmatically built one
// must face the same rules where the tables are actually touched.
func ValidateNames(st *Statement) error {
	for _, name := range []string{st.Into, st.Model} {
		if name == "" {
			continue
		}
		// "__meta" names are reserved for model metadata side tables:
		// training INTO x__meta would alias another model's side table
		// under a different lock key (see DESIGN.md §6) and corrupt SHOW
		// MODELS' pairing of coefficient and metadata tables.
		if strings.HasSuffix(name, MetaSuffix) {
			return fmt.Errorf("spec: name %q is reserved for model metadata (pick a name not ending in %s)", name, MetaSuffix)
		}
		// "__shadow" anywhere in a name is reserved for the crash-atomic
		// save protocol's in-flight generations: INTO m__shadow would
		// collide with the shadow heap a retrain of m builds, and the
		// recovery sweep deletes *__shadow.heap files at startup.
		if strings.Contains(name, ShadowSuffix) {
			return fmt.Errorf("spec: name %q is reserved for in-flight table generations (pick a name without %s)", name, ShadowSuffix)
		}
		// Destination names become heap file names; reject path tricks and
		// over-long names up front so a long TRAIN cannot run to completion
		// (or occupy an async worker) only to fail at save time. The
		// derived __meta side-table name must pass too (length cap).
		if err := engine.ValidTableName(name); err != nil {
			return err
		}
		if err := engine.ValidTableName(name + MetaSuffix); err != nil {
			return err
		}
	}
	// Shadow generations are not readable tables either: a FROM scan of one
	// would race the save that is filling it (they are hidden from SHOW
	// TABLES and may vanish at any commit).
	if st.From != "" && strings.Contains(st.From, ShadowSuffix) {
		return fmt.Errorf("spec: cannot read %q — %s names are reserved in-flight table generations", st.From, ShadowSuffix)
	}
	// INTO naming the FROM source (or, for PREDICT, the USING model) would
	// drop that table to make room for the result — silent data loss.
	if st.Into != "" && st.Into == st.From {
		return fmt.Errorf("spec: INTO %q would overwrite the FROM source table", st.Into)
	}
	if st.Kind == KindPredict && st.Into != "" && st.Into == st.Model {
		return fmt.Errorf("spec: PREDICT INTO %q would overwrite the model it is using", st.Into)
	}
	return nil
}

// --- legacy SELECT Func(...) lowering ---

// legacyCall parses SELECT Func('a', 'b', 3) and lowers it into the
// equivalent declarative Statement — the paper's §2.1 MADlib-style
// interface, kept for back-compat.
func (p *parser) legacyCall() (*Statement, error) {
	fn, err := p.ident("a function name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var args []Literal
	if !p.accept(")") {
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			args = append(args, lit)
			if p.accept(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	st, err := lowerLegacy(fn, args)
	if err != nil {
		return nil, err
	}
	return st, p.validate(st)
}

// legacyArity describes one legacy function's shape.
func lowerLegacy(fn string, args []Literal) (*Statement, error) {
	argStr := func(i int) (string, error) {
		s, ok := args[i].Text()
		if !ok {
			return "", fmt.Errorf("spec: %s: argument %d must be a string", fn, i+1)
		}
		return s, nil
	}
	argInt := func(i int, key string) (Param, error) {
		if args[i].Kind != LitNumber || !args[i].IsInt {
			return Param{}, fmt.Errorf("spec: %s: argument %d (%s) must be an integer", fn, i+1, key)
		}
		return Param{Key: key, Val: args[i]}, nil
	}
	need := func(n int, usage string) error {
		if len(args) != n {
			return fmt.Errorf("spec: %s needs %s", fn, usage)
		}
		return nil
	}

	switch strings.ToLower(fn) {
	case "lrtrain", "svmtrain":
		if err := need(4, "(model, table, vecCol, labelCol)"); err != nil {
			return nil, err
		}
		model, err1 := argStr(0)
		tbl, err2 := argStr(1)
		vec, err3 := argStr(2)
		label, err4 := argStr(3)
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return nil, err
		}
		task := "svm"
		if strings.EqualFold(fn, "lrtrain") {
			task = "lr"
		}
		return &Statement{Kind: KindTrain, From: tbl, Task: task,
			Columns: []string{vec}, Label: label, Into: model}, nil

	case "lmftrain":
		if err := need(5, "(model, table, rows, cols, rank)"); err != nil {
			return nil, err
		}
		model, err1 := argStr(0)
		tbl, err2 := argStr(1)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		var with []Param
		for i, key := range []string{"rows", "cols", "rank"} {
			pr, err := argInt(2+i, key)
			if err != nil {
				return nil, err
			}
			with = append(with, pr)
		}
		return &Statement{Kind: KindTrain, From: tbl, Task: "lmf", With: with, Into: model}, nil

	case "crftrain":
		if err := need(4, "(model, table, numFeatures, numLabels)"); err != nil {
			return nil, err
		}
		model, err1 := argStr(0)
		tbl, err2 := argStr(1)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		var with []Param
		for i, key := range []string{"features", "labels"} {
			pr, err := argInt(2+i, key)
			if err != nil {
				return nil, err
			}
			with = append(with, pr)
		}
		return &Statement{Kind: KindTrain, From: tbl, Task: "crf", With: with, Into: model}, nil

	case "predict":
		if err := need(3, "(model, table, vecCol)"); err != nil {
			return nil, err
		}
		model, err1 := argStr(0)
		tbl, err2 := argStr(1)
		vec, err3 := argStr(2)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return &Statement{Kind: KindPredict, From: tbl, Columns: []string{vec}, Model: model}, nil

	case "tables":
		if err := need(0, "no arguments"); err != nil {
			return nil, err
		}
		return &Statement{Kind: KindShowTables}, nil
	}
	return nil, fmt.Errorf("spec: unknown function %q", fn)
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
