package spec

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseTrainFull(t *testing.T) {
	st, err := Parse(`SELECT vec, label FROM papers
		WHERE split = 'train' AND weight >= 0.5
		TO TRAIN svm
		WITH alpha=0.1, decay=0.9, step=geometric, epochs=30, tol=0.001,
		     seed=7, order=shuffle_once, parallel=nolock, workers=4, mu=0.01
		COLUMN vec
		LABEL label
		INTO myModel;`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindTrain || st.Task != "svm" || st.From != "papers" || st.Into != "myModel" {
		t.Fatalf("bad statement: %+v", st)
	}
	if len(st.Select) != 2 || st.Select[0] != "vec" || st.Select[1] != "label" {
		t.Fatalf("select: %v", st.Select)
	}
	if len(st.Where) != 2 || st.Where[0].Col != "split" || st.Where[0].Op != "=" ||
		st.Where[1].Col != "weight" || st.Where[1].Op != ">=" || st.Where[1].Val.Num != 0.5 {
		t.Fatalf("where: %+v", st.Where)
	}
	if len(st.With) != 10 {
		t.Fatalf("with: %+v", st.With)
	}
	if v, ok := st.WithValue("alpha"); !ok || v.Num != 0.1 {
		t.Fatalf("alpha: %+v", v)
	}
	if v, ok := st.WithValue("workers"); !ok || !v.IsInt || v.Int != 4 {
		t.Fatalf("workers: %+v", v)
	}
	if v, ok := st.WithValue("order"); !ok || v.Str != "shuffle_once" {
		t.Fatalf("order: %+v", v)
	}
	if len(st.Columns) != 1 || st.Columns[0] != "vec" || st.Label != "label" {
		t.Fatalf("columns/label: %v %q", st.Columns, st.Label)
	}
}

// TestParseEveryKnob parses a statement carrying every uniform WITH knob
// and checks it binds cleanly.
func TestParseEveryKnob(t *testing.T) {
	cases := map[string]string{
		KnobAlpha:     "alpha=0.05",
		KnobDecay:     "decay=0.9",
		KnobStep:      "step=diminishing",
		KnobEpochs:    "epochs=5",
		KnobTol:       "tol=0.001",
		KnobSeed:      "seed=42",
		KnobOrder:     "order=shuffle_always",
		KnobParallel:  "parallel=aig",
		KnobWorkers:   "workers=2",
		KnobMRS:       "mrs=100",
		KnobReservoir: "reservoir=0",
		KnobSolver:    "solver=igd",
		KnobThreshold: "threshold=0.5",
	}
	for key, kv := range cases {
		st, err := Parse("SELECT * FROM t TO TRAIN lr WITH " + kv + " INTO m")
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if _, ok := st.WithValue(key); !ok {
			t.Fatalf("%s: knob not captured", key)
		}
		if _, _, err := SplitKnobs(st.With); err != nil {
			t.Fatalf("%s: %v", key, err)
		}
	}
}

func TestParsePredictAndEvaluate(t *testing.T) {
	st, err := Parse(`SELECT * FROM holdout TO PREDICT WITH threshold=0.7 INTO scores USING m;`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindPredict || st.Model != "m" || st.Into != "scores" {
		t.Fatalf("predict: %+v", st)
	}
	st, err = Parse(`SELECT row, col, rating FROM ratings WHERE fold = 0 TO EVALUATE USING mf`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindEvaluate || st.Model != "mf" || len(st.Where) != 1 {
		t.Fatalf("evaluate: %+v", st)
	}
}

func TestParseShow(t *testing.T) {
	for src, kind := range map[string]Kind{
		"SHOW TABLES;":     KindShowTables,
		"show tasks":       KindShowTasks,
		"SELECT Tables();": KindShowTables,
	} {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if st.Kind != kind {
			t.Fatalf("%q: kind %v", src, st.Kind)
		}
	}
}

func TestParseLegacyLowering(t *testing.T) {
	st, err := Parse(`SELECT SVMTrain('myModel', 'papers', 'vec', 'label');`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindTrain || st.Task != "svm" || st.From != "papers" ||
		st.Into != "myModel" || st.Label != "label" ||
		len(st.Columns) != 1 || st.Columns[0] != "vec" {
		t.Fatalf("lowered: %+v", st)
	}

	st, err = Parse(`SELECT LMFTrain('mf', 'ratings', 40, 30, 4)`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Task != "lmf" {
		t.Fatalf("task: %q", st.Task)
	}
	for key, want := range map[string]int64{"rows": 40, "cols": 30, "rank": 4} {
		if v, ok := st.WithValue(key); !ok || v.Int != want {
			t.Fatalf("%s: %+v", key, v)
		}
	}

	st, err = Parse(`SELECT Predict('m', 'papers', 'vec')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindPredict || st.Model != "m" {
		t.Fatalf("predict: %+v", st)
	}
}

// TestParseQuotedCommas is the parseArgs regression: quoted arguments
// containing commas (and escaped quotes) must survive intact.
func TestParseQuotedCommas(t *testing.T) {
	st, err := Parse(`SELECT SVMTrain('my,model', 'o''brien,''s table', 'vec', 'label')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Into != "my,model" {
		t.Fatalf("model: %q", st.Into)
	}
	if st.From != "o'brien,'s table" {
		t.Fatalf("table: %q", st.From)
	}
	// Backslash escapes work too.
	st, err = Parse(`SELECT SVMTrain('it\'s', 't', 'v', 'l')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Into != "it's" {
		t.Fatalf("model: %q", st.Into)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"DROP TABLE x":                                     "expected SELECT or SHOW",
		"SELECT * FROM t TO TRAIN lr":                      "INTO",
		"SELECT * FROM t TO PREDICT":                       "USING",
		"SELECT * FROM t TO EXPLAIN lr INTO m":             "TRAIN, PREDICT or EVALUATE",
		"SELECT * FROM t TO TRAIN lr WITH alpha INTO m":    `"="`,
		"SELECT * FROM t TO TRAIN lr WITH a=1, a=2 INTO m": "duplicate WITH",
		"SELECT * FROM t TO TRAIN lr INTO m INTO n":        "duplicate INTO",
		"SELECT * FROM t TO TRAIN lr INTO m USING q":       "does not take USING",
		"SELECT * FROM t TO EVALUATE INTO m USING q":       "does not take INTO",
		"SELECT * FROM t WHERE a ~ 1 TO TRAIN lr INTO m":   "unexpected character",
		"SELECT LRTrain('only-two', 'args')":               "needs",
		"SELECT LMFTrain('m', 't', 'x', 'y', 'z')":         "must be an integer",
		"SELECT NoSuchFunc('a')":                           "unknown function",
		"SELECT * FROM t TO TRAIN lr INTO 'm":              "unterminated string",
		"SELECT * FROM t TO TRAIN lr INTO m extra":         "trailing input",
	}
	for src, want := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Fatalf("%q: expected error", src)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("%q: error %q does not mention %q", src, err, want)
		}
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := lex("SELECT 'never closed"); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err: %v", err)
	}
}

func TestLexComments(t *testing.T) {
	st, err := Parse("SELECT * FROM t -- a comment\nTO TRAIN lr INTO m -- done")
	if err != nil {
		t.Fatal(err)
	}
	if st.Task != "lr" || st.Into != "m" {
		t.Fatalf("statement: %+v", st)
	}
}

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SHOW TASKS; SHOW TABLES;", []string{"SHOW TASKS;", "SHOW TABLES;"}},
		{"SHOW TABLES", []string{"SHOW TABLES"}},
		{"SELECT f('a;b'); SHOW TABLES;", []string{"SELECT f('a;b');", "SHOW TABLES;"}},
		{"SELECT f('it''s;ok');", []string{"SELECT f('it''s;ok');"}},
		{"SHOW TABLES; -- check holdout", []string{"SHOW TABLES;"}},
		{"-- todo; later\nSHOW TABLES;", []string{"-- todo; later\nSHOW TABLES;"}},
		{"   ;  ; ", nil},
		{"-- only a comment", nil},
		{"SELECT 'unterminated", []string{"SELECT 'unterminated"}},
	}
	for _, c := range cases {
		got := SplitStatements(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitStatements(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}
