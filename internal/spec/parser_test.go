package spec

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestParseTrainFull(t *testing.T) {
	st, err := Parse(`SELECT vec, label FROM papers
		WHERE split = 'train' AND weight >= 0.5
		TO TRAIN svm
		WITH alpha=0.1, decay=0.9, step=geometric, epochs=30, tol=0.001,
		     seed=7, order=shuffle_once, parallel=nolock, workers=4, mu=0.01
		COLUMN vec
		LABEL label
		INTO myModel;`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindTrain || st.Task != "svm" || st.From != "papers" || st.Into != "myModel" {
		t.Fatalf("bad statement: %+v", st)
	}
	if len(st.Select) != 2 || st.Select[0] != "vec" || st.Select[1] != "label" {
		t.Fatalf("select: %v", st.Select)
	}
	if len(st.Where) != 2 || st.Where[0].Col != "split" || st.Where[0].Op != "=" ||
		st.Where[1].Col != "weight" || st.Where[1].Op != ">=" || st.Where[1].Val.Num != 0.5 {
		t.Fatalf("where: %+v", st.Where)
	}
	if len(st.With) != 10 {
		t.Fatalf("with: %+v", st.With)
	}
	if v, ok := st.WithValue("alpha"); !ok || v.Num != 0.1 {
		t.Fatalf("alpha: %+v", v)
	}
	if v, ok := st.WithValue("workers"); !ok || !v.IsInt || v.Int != 4 {
		t.Fatalf("workers: %+v", v)
	}
	if v, ok := st.WithValue("order"); !ok || v.Str != "shuffle_once" {
		t.Fatalf("order: %+v", v)
	}
	if len(st.Columns) != 1 || st.Columns[0] != "vec" || st.Label != "label" {
		t.Fatalf("columns/label: %v %q", st.Columns, st.Label)
	}
}

// TestParseEveryKnob parses a statement carrying every uniform WITH knob
// and checks it binds cleanly.
func TestParseEveryKnob(t *testing.T) {
	cases := map[string]string{
		KnobAlpha:     "alpha=0.05",
		KnobDecay:     "decay=0.9",
		KnobStep:      "step=diminishing",
		KnobEpochs:    "epochs=5",
		KnobTol:       "tol=0.001",
		KnobSeed:      "seed=42",
		KnobOrder:     "order=shuffle_always",
		KnobParallel:  "parallel=aig",
		KnobWorkers:   "workers=2",
		KnobMRS:       "mrs=100",
		KnobReservoir: "reservoir=0",
		KnobSolver:    "solver=igd",
		KnobThreshold: "threshold=0.5",
	}
	for key, kv := range cases {
		st, err := Parse("SELECT * FROM t TO TRAIN lr WITH " + kv + " INTO m")
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if _, ok := st.WithValue(key); !ok {
			t.Fatalf("%s: knob not captured", key)
		}
		if _, _, err := SplitKnobs(st.With); err != nil {
			t.Fatalf("%s: %v", key, err)
		}
	}
}

func TestParsePredictAndEvaluate(t *testing.T) {
	st, err := Parse(`SELECT * FROM holdout TO PREDICT WITH threshold=0.7 INTO scores USING m;`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindPredict || st.Model != "m" || st.Into != "scores" {
		t.Fatalf("predict: %+v", st)
	}
	st, err = Parse(`SELECT row, col, rating FROM ratings WHERE fold = 0 TO EVALUATE USING mf`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindEvaluate || st.Model != "mf" || len(st.Where) != 1 {
		t.Fatalf("evaluate: %+v", st)
	}
}

func TestParsePointPredict(t *testing.T) {
	st, err := Parse(`PREDICT (1.5, -2, 3e-1) USING m;`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindPointPredict || st.Model != "m" || len(st.Points) != 1 {
		t.Fatalf("point predict: %+v", st)
	}
	if got := st.Points[0]; len(got) != 3 || got[0] != 1.5 || got[1] != -2 || got[2] != 0.3 {
		t.Fatalf("values: %v", got)
	}

	st, err = Parse(`PREDICT VALUES (1, 2), (3, 4), (5, 6) USING 'my model'`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindPointPredict || st.Model != "my model" || len(st.Points) != 3 {
		t.Fatalf("batched point predict: %+v", st)
	}
	if st.Points[2][1] != 6 {
		t.Fatalf("values: %v", st.Points)
	}
}

func TestParsePointPredictErrors(t *testing.T) {
	for src, wantSub := range map[string]string{
		"PREDICT () USING m;":                 "empty tuple",
		"PREDICT VALUES () USING m;":          "empty tuple",
		"PREDICT VALUES (1, 2), (3) USING m;": "arity mismatch",
		"PREDICT (1, 2);":                     "USING",
		"PREDICT USING m;":                    `"("`,
		"PREDICT ('a') USING m;":              "numeric",
		"PREDICT (1) USING m__meta;":          "reserved",
		"PREDICT (1) USING m__shadow;":        "reserved",
		// VALUES does not graft onto the table form.
		"SELECT * FROM t TO PREDICT VALUES (1, 2) USING m;": "inline point form",
	} {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Parse(%q) = %v, want mention of %q", src, err, wantSub)
		}
	}
}

func TestValidatePointsCaps(t *testing.T) {
	big := make([]float64, MaxPointValues+1)
	if err := ValidatePoints([][]float64{big}); err == nil {
		t.Error("oversized tuple accepted")
	}
	batch := make([][]float64, MaxPointBatch+1)
	for i := range batch {
		batch[i] = []float64{1}
	}
	if err := ValidatePoints(batch); err == nil {
		t.Error("oversized batch accepted")
	}
	if err := ValidatePoints(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if err := ValidatePoints([][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Errorf("valid points rejected: %v", err)
	}
}

func TestParseShow(t *testing.T) {
	for src, kind := range map[string]Kind{
		"SHOW TABLES;":     KindShowTables,
		"show tasks":       KindShowTasks,
		"SELECT Tables();": KindShowTables,
	} {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if st.Kind != kind {
			t.Fatalf("%q: kind %v", src, st.Kind)
		}
	}
}

func TestParseLegacyLowering(t *testing.T) {
	st, err := Parse(`SELECT SVMTrain('myModel', 'papers', 'vec', 'label');`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindTrain || st.Task != "svm" || st.From != "papers" ||
		st.Into != "myModel" || st.Label != "label" ||
		len(st.Columns) != 1 || st.Columns[0] != "vec" {
		t.Fatalf("lowered: %+v", st)
	}

	st, err = Parse(`SELECT LMFTrain('mf', 'ratings', 40, 30, 4)`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Task != "lmf" {
		t.Fatalf("task: %q", st.Task)
	}
	for key, want := range map[string]int64{"rows": 40, "cols": 30, "rank": 4} {
		if v, ok := st.WithValue(key); !ok || v.Int != want {
			t.Fatalf("%s: %+v", key, v)
		}
	}

	st, err = Parse(`SELECT Predict('m', 'papers', 'vec')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindPredict || st.Model != "m" {
		t.Fatalf("predict: %+v", st)
	}
}

// TestParseQuotedCommas is the parseArgs regression: quoted arguments
// containing commas (and escaped quotes) must survive intact.
func TestParseQuotedCommas(t *testing.T) {
	st, err := Parse(`SELECT SVMTrain('my,model', 'o''brien,''s table', 'vec', 'label')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Into != "my,model" {
		t.Fatalf("model: %q", st.Into)
	}
	if st.From != "o'brien,'s table" {
		t.Fatalf("table: %q", st.From)
	}
	// Backslash escapes work too.
	st, err = Parse(`SELECT SVMTrain('it\'s', 't', 'v', 'l')`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Into != "it's" {
		t.Fatalf("model: %q", st.Into)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"DROP TABLE x":                                     "expected SELECT, SHOW, CHECK, WAIT, CANCEL or PREDICT",
		"SELECT * FROM t TO TRAIN lr":                      "INTO",
		"SELECT * FROM t TO PREDICT":                       "USING",
		"SELECT * FROM t TO EXPLAIN lr INTO m":             "TRAIN, PREDICT or EVALUATE",
		"SELECT * FROM t TO TRAIN lr WITH alpha INTO m":    `"="`,
		"SELECT * FROM t TO TRAIN lr WITH a=1, a=2 INTO m": "duplicate WITH",
		"SELECT * FROM t TO TRAIN lr INTO m INTO n":        "duplicate INTO",
		"SELECT * FROM t TO TRAIN lr INTO m USING q":       "does not take USING",
		"SELECT * FROM t TO EVALUATE INTO m USING q":       "does not take INTO",
		"SELECT * FROM t WHERE a ~ 1 TO TRAIN lr INTO m":   "unexpected character",
		"SELECT LRTrain('only-two', 'args')":               "needs",
		"SELECT LMFTrain('m', 't', 'x', 'y', 'z')":         "must be an integer",
		"SELECT NoSuchFunc('a')":                           "unknown function",
		"SELECT * FROM t TO TRAIN lr INTO 'm":              "unterminated string",
		"SELECT * FROM t TO TRAIN lr INTO m extra":         "trailing input",
	}
	for src, want := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Fatalf("%q: expected error", src)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("%q: error %q does not mention %q", src, err, want)
		}
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := lex("SELECT 'never closed"); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err: %v", err)
	}
}

func TestLexComments(t *testing.T) {
	st, err := Parse("SELECT * FROM t -- a comment\nTO TRAIN lr INTO m -- done")
	if err != nil {
		t.Fatal(err)
	}
	if st.Task != "lr" || st.Into != "m" {
		t.Fatalf("statement: %+v", st)
	}
}

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SHOW TASKS; SHOW TABLES;", []string{"SHOW TASKS;", "SHOW TABLES;"}},
		{"SHOW TABLES", []string{"SHOW TABLES"}},
		{"SELECT f('a;b'); SHOW TABLES;", []string{"SELECT f('a;b');", "SHOW TABLES;"}},
		{"SELECT f('it''s;ok');", []string{"SELECT f('it''s;ok');"}},
		{"SHOW TABLES; -- check holdout", []string{"SHOW TABLES;"}},
		{"-- todo; later\nSHOW TABLES;", []string{"-- todo; later\nSHOW TABLES;"}},
		{"   ;  ; ", nil},
		{"-- only a comment", nil},
		{"SELECT 'unterminated", []string{"SELECT 'unterminated"}},
	}
	for _, c := range cases {
		got := SplitStatements(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitStatements(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

// TestParseAsyncAndJobStatements covers the server-oriented grammar: the
// ASYNC tail clause on TRAIN and the SHOW/WAIT/CANCEL job statements.
func TestParseAsyncAndJobStatements(t *testing.T) {
	st, err := Parse(`SELECT vec, label FROM papers TO TRAIN svm WITH epochs=50 INTO m ASYNC;`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindTrain || !st.Async || st.Into != "m" {
		t.Fatalf("async train: %+v", st)
	}
	// ASYNC composes with clauses in any order.
	st, err = Parse(`SELECT * FROM t TO TRAIN lr ASYNC INTO m`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Async || st.Into != "m" {
		t.Fatalf("async before INTO: %+v", st)
	}

	for src, want := range map[string]Kind{
		"SHOW MODELS;":   KindShowModels,
		"SHOW JOBS;":     KindShowJobs,
		"SHOW SERVING;":  KindShowServing,
		"show serving":   KindShowServing,
		"WAIT JOB 3;":    KindWaitJob,
		"CANCEL JOB 12;": KindCancelJob,
	} {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if st.Kind != want {
			t.Fatalf("%s parsed as %v, want %v", src, st.Kind, want)
		}
	}
	if st, _ := Parse("WAIT JOB 3;"); st.JobID != 3 {
		t.Fatalf("job id: %+v", st)
	}

	for _, bad := range []string{
		"SELECT * FROM t TO PREDICT USING m ASYNC;", // ASYNC is TRAIN-only
		"SELECT * FROM t TO TRAIN svm INTO m ASYNC ASYNC;",
		"WAIT JOB;",
		"WAIT JOB -1;",
		"WAIT JOB 1.5;",
		"CANCEL JOB m;",
		"SHOW JOB 1;",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestIncomplete pins the lexer-completeness probe the line front ends
// share: only an open string literal counts as incomplete.
func TestIncomplete(t *testing.T) {
	for text, want := range map[string]bool{
		"SELECT * FROM t TO TRAIN lr INTO 'a;":    true,
		"INTO 'it''s still open;":                 true,
		"SELECT * FROM t;":                        false,
		"SELECT * FROM t TO TRAIN lr INTO 'a;b';": false,
		"":              false,
		"bad ? char;":   false, // not repairable by more input
		"SELECT ? 'abc": true,  // lex error before the quote must not mask the open string
	} {
		if got := Incomplete(text); got != want {
			t.Errorf("Incomplete(%q) = %v, want %v", text, got, want)
		}
	}
}

// TestTermScannerAgreesWithLexer cross-checks the streaming automaton
// against the real lexer, its ground truth: wherever lex succeeds, the
// scanner's terminator verdict must match the last token, and wherever
// lex reports an open string the scanner must be inString.
func TestTermScannerAgreesWithLexer(t *testing.T) {
	for _, text := range append(append([]string{}, seedStatements...),
		"SELECT 'a;\nb';", "INTO 'x''y';", "INTO 'x\\'y';", "-- c;\nSHOW TABLES;",
		"a; b", "a;\n-- done", "';' ';';", "'open", "ok; 'open",
	) {
		var ts TermScanner
		ts.Write(text)
		toks, err := lex(text)
		switch {
		case err == nil:
			wantTerm := len(toks) >= 2 &&
				toks[len(toks)-2].kind == tokSymbol && toks[len(toks)-2].text == ";"
			if ts.Terminated() != wantTerm {
				t.Errorf("Terminated(%q) = %v, lexer says %v", text, ts.Terminated(), wantTerm)
			}
			if ts.inString {
				t.Errorf("inString(%q) = true on cleanly-lexed text", text)
			}
		case errors.Is(err, ErrUnterminatedString):
			if !ts.inString {
				t.Errorf("inString(%q) = false, lexer reports an open string", text)
			}
		}
	}
}

// TestTerminated pins the lexer-based statement-terminator probe: only a
// ';' token terminates — not one inside a string or a -- comment.
func TestTerminated(t *testing.T) {
	for text, want := range map[string]bool{
		"SELECT * FROM t;":             true,
		"SELECT * FROM t; -- trailing": true,
		"SELECT * FROM t":              false,
		"SHOW -- note;\n":              false, // the ';' is comment payload
		"SHOW -- note;\nTABLES;":       true,
		"INTO 'a;":                     false, // open string literal
		"INTO 'a;b';":                  true,
		"-- comment only;":             false,
		"":                             false,
		"bad ? char":                   false, // no terminator yet
		"bad ? char;":                  true,  // terminated; Parse reports the error
		"SELECT 1;\n-- post comment":   true,  // trailing comment keeps the ';' terminal
	} {
		if got := Terminated(text); got != want {
			t.Errorf("Terminated(%q) = %v, want %v", text, got, want)
		}
	}
}

// TestTermScannerIncrementalMatchesWhole: feeding lines incrementally
// must agree with scanning the concatenated buffer — the wire protocol
// depends on it to avoid re-lexing per line.
func TestTermScannerIncrementalMatchesWhole(t *testing.T) {
	lines := []string{
		"SELECT vec, label FROM papers -- features;",
		"TO TRAIN lr WITH epochs=1",
		"INTO 'm;",
		"x''y\\';",
		"still in string'",
		";",
		"SHOW TABLES;",
	}
	var inc TermScanner
	buf := ""
	for _, ln := range lines {
		inc.Write(ln)
		inc.Write("\n")
		buf += ln + "\n"
		if got, want := inc.Terminated(), Terminated(buf); got != want {
			t.Fatalf("after %q: incremental=%v whole=%v", ln, got, want)
		}
	}
	if !inc.Terminated() {
		t.Fatal("final buffer should be terminated")
	}
	inc.Reset()
	if inc.Terminated() {
		t.Fatal("reset scanner reports terminated")
	}
}

// TestReservedMetaNamesRejected: user statements cannot name models or
// destinations ending in __meta — those alias metadata side tables under
// a different lock key.
func TestReservedMetaNamesRejected(t *testing.T) {
	for _, bad := range []string{
		"SELECT * FROM t TO TRAIN lr INTO m__meta;",
		"SELECT * FROM t TO PREDICT INTO out__meta USING m;",
		"SELECT * FROM t TO PREDICT USING m__meta;",
		"SELECT * FROM t TO EVALUATE USING 'm__meta';",
		"SELECT SVMTrain('m__meta', 't', 'vec', 'label');",
	} {
		if _, err := Parse(bad); err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Errorf("Parse(%q): %v (want reserved-name error)", bad, err)
		}
	}
	// Reading a side table as a data source stays legal.
	if _, err := Parse("SELECT * FROM m__meta TO PREDICT USING m;"); err != nil {
		t.Errorf("FROM __meta should parse: %v", err)
	}
}

// TestReservedShadowNamesRejected: "__shadow" anywhere in a user name is
// reserved for the crash-atomic save protocol's in-flight generations —
// INTO m__shadow would collide with the shadow heap a retrain of m
// builds, and the recovery sweep deletes *__shadow.heap at startup. Even
// reading one is rejected: a shadow is not a table until its swap commits.
func TestReservedShadowNamesRejected(t *testing.T) {
	for _, bad := range []string{
		"SELECT * FROM t TO TRAIN lr INTO m__shadow;",
		"SELECT * FROM t TO TRAIN lr INTO 'm__shadow_2';",
		"SELECT * FROM t TO PREDICT INTO out__shadow USING m;",
		"SELECT * FROM t TO PREDICT USING m__shadow;",
		"SELECT * FROM m__shadow TO PREDICT USING m;",
		"SELECT SVMTrain('m__shadow', 't', 'vec', 'label');",
	} {
		if _, err := Parse(bad); err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Errorf("Parse(%q): %v (want reserved-name error)", bad, err)
		}
	}
	// Names that merely contain "shadow" without the reserved marker stay
	// legal.
	if _, err := Parse("SELECT * FROM t TO TRAIN lr INTO shadow_prices;"); err != nil {
		t.Errorf("INTO shadow_prices should parse: %v", err)
	}
}

// TestPathTraversalNamesRejectedAtParse: destination names become heap
// file names; path tricks must fail at parse time, not after a full
// training run (or inside an async worker).
func TestPathTraversalNamesRejectedAtParse(t *testing.T) {
	for _, bad := range []string{
		"SELECT * FROM t TO TRAIN lr INTO '../evil';",
		"SELECT * FROM t TO TRAIN lr INTO 'a/b' ASYNC;",
		"SELECT * FROM t TO PREDICT INTO 'a\\b' USING m;",
		"SELECT * FROM t TO PREDICT USING 'a/..';",
		"SELECT SVMTrain('../m', 't', 'vec', 'label');",
	} {
		if _, err := Parse(bad); err == nil || !strings.Contains(err.Error(), "invalid table name") {
			t.Errorf("Parse(%q): %v (want invalid-table-name error)", bad, err)
		}
	}
}

// TestIntoCannotOverwriteSource: INTO naming the FROM table (or the USING
// model, or an over-long name) is rejected at parse time.
func TestIntoCannotOverwriteSource(t *testing.T) {
	long := strings.Repeat("n", 130)
	for src, want := range map[string]string{
		"SELECT * FROM papers TO TRAIN lr INTO papers;":                        "overwrite the FROM",
		"SELECT * FROM out TO PREDICT INTO out USING m;":                       "overwrite the FROM",
		"SELECT * FROM t TO PREDICT INTO m USING m;":                           "overwrite the model",
		"SELECT * FROM t TO TRAIN lr INTO '" + long + "';":                     "longer than",
		"SELECT * FROM t TO TRAIN lr INTO '" + strings.Repeat("n", 125) + "';": "longer than", // base fits, __meta does not
	} {
		if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%.60q...): %v (want %q)", src, err, want)
		}
	}
}

// TestShowShardsParsing covers the SHOW SHARDS grammar: table name
// (identifier or quoted), optional positive integer shard count, clean
// rejection of missing names and non-positive or fractional counts.
func TestShowShardsParsing(t *testing.T) {
	st, err := Parse("SHOW SHARDS forest;")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindShowShards || st.From != "forest" || st.ShardCount != 0 {
		t.Fatalf("SHOW SHARDS forest parsed to %+v", st)
	}
	st, err = Parse("show shards 'my table' 8")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindShowShards || st.From != "my table" || st.ShardCount != 8 {
		t.Fatalf("quoted SHOW SHARDS parsed to %+v", st)
	}
	if KindShowShards.String() != "SHOW SHARDS" {
		t.Fatalf("kind string %q", KindShowShards)
	}
	for _, bad := range []string{
		"SHOW SHARDS;",            // missing table
		"SHOW SHARDS forest 0;",   // zero count
		"SHOW SHARDS forest 2.5;", // fractional count
		"SHOW SHARDS forest -3;",  // negative count (trailing input)
		"SHOW SHARDS t__shadow;",  // reserved in-flight generation
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestShardsKnobValidation pins the shards / shard_by knob rules: positive
// integers only, shard_by needs shards, and sharding is mutually exclusive
// with the other parallelism/sampling knobs and the baseline solvers.
func TestShardsKnobValidation(t *testing.T) {
	knobsOf := func(src string) (Knobs, error) {
		t.Helper()
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		k, _, err := SplitKnobs(st.With)
		return k, err
	}

	k, err := knobsOf("SELECT * FROM t TO TRAIN lr WITH shards=4 INTO m;")
	if err != nil {
		t.Fatal(err)
	}
	if k.Shards != 4 || k.ShardBy != "roundrobin" {
		t.Fatalf("shards=4 bound to %+v", k)
	}
	if k.ShardStrategy().String() != "roundrobin" {
		t.Fatalf("default strategy %v", k.ShardStrategy())
	}
	k, err = knobsOf("SELECT * FROM t TO TRAIN lr WITH shards=2, shard_by=hash INTO m;")
	if err != nil {
		t.Fatal(err)
	}
	if k.ShardStrategy().String() != "hash" {
		t.Fatalf("shard_by=hash maps to %v", k.ShardStrategy())
	}

	for src, want := range map[string]string{
		"SELECT * FROM t TO TRAIN lr WITH shards=0 INTO m;":                  "positive integer",
		"SELECT * FROM t TO TRAIN lr WITH shards=-2 INTO m;":                 "positive integer",
		"SELECT * FROM t TO TRAIN lr WITH shards=2.5 INTO m;":                "integer",
		"SELECT * FROM t TO TRAIN lr WITH shards=four INTO m;":               "integer",
		"SELECT * FROM t TO TRAIN lr WITH shard_by=hash INTO m;":             "requires shards",
		"SELECT * FROM t TO TRAIN lr WITH shards=2, parallel=nolock INTO m;": "mutually exclusive",
		"SELECT * FROM t TO TRAIN lr WITH shards=2, mrs=100 INTO m;":         "mutually exclusive",
		"SELECT * FROM t TO TRAIN lr WITH shards=2, solver=batch INTO m;":    "does not combine",
		"SELECT * FROM t TO TRAIN lr WITH shards=2, workers=8 INTO m;":       "ignores workers",
	} {
		if _, err := knobsOf(src); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("SplitKnobs(%q): %v (want %q)", src, err, want)
		}
	}
}

// TestShardsCapped pins the MaxShards bound: an unbounded K from an
// untrusted statement would allocate K heaps/replicas and OOM the daemon,
// so both the knob and the SHOW SHARDS count refuse counts past the cap.
func TestShardsCapped(t *testing.T) {
	st, err := Parse("SELECT * FROM t TO TRAIN lr WITH shards=10000000000 INTO m;")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SplitKnobs(st.With); err == nil || !strings.Contains(err.Error(), "exceeds the limit") {
		t.Fatalf("huge shards knob: %v", err)
	}
	if _, err := Parse("SHOW SHARDS t 10000000000;"); err == nil || !strings.Contains(err.Error(), "exceeds the limit") {
		t.Fatalf("huge SHOW SHARDS count: %v", err)
	}
	// The cap itself is accepted.
	st, err = Parse(fmt.Sprintf("SELECT * FROM t TO TRAIN lr WITH shards=%d INTO m;", MaxShards))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SplitKnobs(st.With); err != nil {
		t.Fatalf("shards=MaxShards should bind: %v", err)
	}
}
