package spec

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// BuildInput is what a task constructor gets: the bound WITH parameters
// and the data view already projected into the task's canonical layout, so
// the constructor can infer dimensions (feature width, matrix extent, ...)
// that the statement did not pin down.
type BuildInput struct {
	Params Params
	View   *engine.Table
}

// TaskSpec is one task's registration: everything the statement layer
// needs to parse, type-check, construct, train, persist, and score the
// task — the single registration point that replaces per-task switch
// statements in the dispatch path.
type TaskSpec struct {
	// Name is the canonical registry key (lowercase), e.g. "lr".
	Name string
	// Aliases are alternative names accepted by TO TRAIN.
	Aliases []string
	// Summary is a one-line description shown by SHOW TASKS.
	Summary string
	// Schema is the canonical training layout the source rows are
	// projected into (vector-typed columns adapt to the source's
	// dense/sparse flavor).
	Schema engine.Schema
	// Params are the task-specific WITH parameters.
	Params []ParamSpec
	// DefaultAlpha is the task's preferred initial step size when the
	// statement sets none (0 picks the session default).
	DefaultAlpha float64
	// ExtraSolvers lists non-IGD solvers this task supports besides the
	// universal "igd" and "batch" (e.g. "irls" for LR, "als" for LMF).
	ExtraSolvers []string
	// Build constructs the task, inferring missing params from the view.
	Build func(in BuildInput) (core.Task, error)
	// Snapshot extracts the fully-resolved constructor parameters from a
	// built task, persisted as model metadata so PREDICT / EVALUATE can
	// rebuild the identical task later.
	Snapshot func(t core.Task) map[string]string
	// Predict, when non-nil, scores one tuple of the canonical layout with
	// a trained model. PREDICT statements fail on tasks without it.
	Predict func(t core.Task, w vector.Dense, tp engine.Tuple) float64
	// DefaultThreshold separates classes in Predict's score space when the
	// statement sets no threshold (0.5 for LR probabilities, 0 for
	// margins).
	DefaultThreshold float64
	// Agrees, when non-nil, reports whether a prediction score matches the
	// example's label (sign agreement for binary tasks, exact class match
	// for multiclass); it powers the accuracy summary when the scored view
	// carries labels. threshold is the statement's resolved decision
	// threshold, so positives and accuracy use one decision rule.
	Agrees func(score, threshold, label float64) bool
	// Evaluate, when non-nil, writes task-appropriate quality metrics for
	// the model over the view; nil falls back to the total objective loss.
	// threshold is the statement's WITH threshold (NaN = task default).
	Evaluate func(t core.Task, w vector.Dense, view *engine.Table, threshold float64, out io.Writer) error
}

// SupportsSolver reports whether the task accepts the given solver.
func (ts *TaskSpec) SupportsSolver(name string) bool {
	if name == "igd" || name == "batch" {
		return true
	}
	for _, s := range ts.ExtraSolvers {
		if s == name {
			return true
		}
	}
	return false
}

var registry = struct {
	sync.RWMutex
	byName map[string]*TaskSpec
	order  []string
}{byName: map[string]*TaskSpec{}}

// Register adds a task spec to the registry; tasks call it from init().
// It panics on duplicate or malformed registrations (a programming error).
func Register(ts TaskSpec) {
	if ts.Name == "" || ts.Build == nil || len(ts.Schema) == 0 {
		panic(fmt.Sprintf("spec: invalid registration %+v", ts))
	}
	ts.Name = strings.ToLower(ts.Name)
	registry.Lock()
	defer registry.Unlock()
	for _, key := range append([]string{ts.Name}, ts.Aliases...) {
		key = strings.ToLower(key)
		if _, dup := registry.byName[key]; dup {
			panic(fmt.Sprintf("spec: duplicate task registration %q", key))
		}
		registry.byName[key] = &ts
	}
	registry.order = append(registry.order, ts.Name)
}

// Lookup resolves a task name (or alias, case-insensitive) to its spec.
func Lookup(name string) (*TaskSpec, error) {
	registry.RLock()
	defer registry.RUnlock()
	ts, ok := registry.byName[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("spec: unknown task %q (known: %s)",
			name, strings.Join(registry.order, ", "))
	}
	return ts, nil
}

// Tasks returns all registered specs sorted by name.
func Tasks() []*TaskSpec {
	registry.RLock()
	defer registry.RUnlock()
	names := append([]string(nil), registry.order...)
	sort.Strings(names)
	out := make([]*TaskSpec, len(names))
	for i, n := range names {
		out[i] = registry.byName[n]
	}
	return out
}

// --- inference helpers for Build hooks ---

// errNoView reports an inference attempt with no data view — the point-
// PREDICT path rebuilds tasks from persisted metadata alone, which carries
// every parameter of a committed model; reaching inference there means the
// metadata is incomplete (or hand-edited), so fail with a diagnosis rather
// than a nil dereference.
func errNoView(what string) error {
	return fmt.Errorf("spec: cannot infer %s without a data view (model metadata incomplete?)", what)
}

// InferVecDim scans the view's column (dense or sparse vectors) and
// returns the maximum dimension.
func InferVecDim(tbl *engine.Table, col int) (int, error) {
	if tbl == nil {
		return 0, errNoView("the feature dimension")
	}
	dim := 0
	err := tbl.Rows().Scan(func(tp engine.Tuple) error {
		switch tp[col].Type {
		case engine.TDenseVec:
			if d := len(tp[col].Dense); d > dim {
				dim = d
			}
		case engine.TSparseVec:
			if d := tp[col].Sparse.MaxIdx(); d > dim {
				dim = d
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if dim == 0 {
		return 0, fmt.Errorf("spec: no feature vectors found in %s.%s",
			tbl.Name, tbl.Schema[col].Name)
	}
	return dim, nil
}

// InferMaxInt returns max(col)+1 over the view — the extent of a 0-based
// index column (matrix rows/cols, vertex ids, class labels).
func InferMaxInt(tbl *engine.Table, col int) (int, error) {
	if tbl == nil {
		return 0, errNoView("an index-column extent")
	}
	maxV := int64(-1)
	err := tbl.Rows().Scan(func(tp engine.Tuple) error {
		v := tp[col].Int
		if tp[col].Type == engine.TFloat64 {
			v = int64(tp[col].Float)
		}
		if v > maxV {
			maxV = v
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if maxV < 0 {
		return 0, fmt.Errorf("spec: cannot infer extent of empty %s.%s",
			tbl.Name, tbl.Schema[col].Name)
	}
	return int(maxV + 1), nil
}

// InferMaxInt32 returns max over all entries of an int32-vector column,
// plus one (the extent of CRF feature/label id spaces).
func InferMaxInt32(tbl *engine.Table, col int) (int, error) {
	if tbl == nil {
		return 0, errNoView("an id-space extent")
	}
	maxV := int32(-1)
	err := tbl.Rows().Scan(func(tp engine.Tuple) error {
		for _, v := range tp[col].Ints {
			if v > maxV {
				maxV = v
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if maxV < 0 {
		return 0, fmt.Errorf("spec: cannot infer extent of empty %s.%s",
			tbl.Name, tbl.Schema[col].Name)
	}
	return int(maxV + 1), nil
}
