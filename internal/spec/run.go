package spec

import (
	"fmt"
	"math"
	"net"
	"runtime"
	"strconv"
	"strings"

	"bismarck/internal/core"
	"bismarck/internal/dist"
	"bismarck/internal/engine"
	"bismarck/internal/ordering"
	"bismarck/internal/parallel"
	"bismarck/internal/sampling"
	"bismarck/internal/vector"
)

// Knob keys shared by every task: step rule, loop control, ordering
// (§3.2), parallelism (§3.3), sampling (§3.4), and solver selection. They
// are stripped from the WITH list before task-specific binding, so a task
// never sees them.
const (
	KnobAlpha     = "alpha"
	KnobDecay     = "decay"
	KnobStep      = "step"
	KnobEpochs    = "epochs"
	KnobTol       = "tol"
	KnobSeed      = "seed"
	KnobOrder     = "order"
	KnobParallel  = "parallel"
	KnobWorkers   = "workers"
	KnobShards    = "shards"
	KnobShardBy   = "shard_by"
	KnobExecutors = "executors"
	KnobMRS       = "mrs"
	KnobReservoir = "reservoir"
	KnobSolver    = "solver"
	KnobThreshold = "threshold"
	KnobDegraded  = "degraded"
)

// KnobSpecs declares the uniform WITH parameters. Defaults marked here
// with zero sentinels are resolved in Knobs.normalize so session-level
// defaults can flow in.
var KnobSpecs = []ParamSpec{
	FloatParam(KnobAlpha, "initial step size (default: task preference)"),
	FloatDefault(KnobDecay, 0.95, "per-epoch decay: rho of geometric, exponent of diminishing"),
	EnumParam(KnobStep, []string{"geometric", "constant", "diminishing"}, "step-size rule (Appendix B)"),
	IntParam(KnobEpochs, "maximum training epochs (default: session setting)"),
	FloatDefault(KnobTol, 0, "relative loss-drop convergence tolerance (0 disables)"),
	IntDefault(KnobSeed, 1, "shuffle / init seed"),
	EnumParam(KnobOrder, []string{"shuffle_once", "shuffle_always", "clustered"}, "data ordering (§3.2)"),
	EnumParam(KnobParallel, []string{"none", "pure_uda", "lock", "aig", "nolock"}, "parallelism scheme (§3.3)"),
	IntDefault(KnobWorkers, 0, "parallel workers (0 = all cores)"),
	IntDefault(KnobShards, 0, "shared-nothing shards: K partitioned epoch workers merged by model averaging (0 disables)"),
	EnumParam(KnobShardBy, []string{"roundrobin", "hash"}, "row-to-shard assignment for shards=K"),
	StringParam(KnobExecutors, "comma-separated executor host:port list: run sharded training on remote bismarckd -executor processes"),
	IntDefault(KnobMRS, 0, "multiplexed reservoir sampling buffer capacity (§3.4)"),
	IntDefault(KnobReservoir, 0, "single-reservoir subsample buffer capacity"),
	EnumParam(KnobSolver, []string{"igd", "batch", "irls", "als"}, "training algorithm (igd is Bismarck)"),
	FloatDefault(KnobThreshold, math.NaN(), "PREDICT decision threshold (default: task preference)"),
	EnumParam(KnobDegraded, []string{"false", "true"}, "skip quarantined pages instead of failing the scan (reports rows skipped)"),
}

// MaxShards caps the shards knob and the SHOW SHARDS count. Shards are
// in-process worker partitions, so anything past a few hundred is
// operator error — and since every shard allocates a heap, a builder and
// a model replica, an unbounded K from an untrusted statement would be a
// one-line OOM kill of the daemon.
const MaxShards = 1024

// MaxExecutors caps the executors host list. Each executor costs the
// coordinator a connection, a shard-shipping pass and a per-epoch round
// trip, so a huge list from an untrusted statement is a resource-exhaustion
// vector, not a deployment anyone runs.
const MaxExecutors = 64

// ValidateShardCount is the single bounds check for every user-supplied
// shard count — the WITH shards=K knob, the SHOW SHARDS <table> [k] form,
// and programmatically built statements all funnel through it, so the
// K<=0 and K>MaxShards rules cannot drift apart across entry points.
func ValidateShardCount(k int64) error {
	if k <= 0 {
		return fmt.Errorf("spec: shard count must be a positive integer, got %d", k)
	}
	if k > MaxShards {
		return fmt.Errorf("spec: shard count %d exceeds the limit of %d", k, MaxShards)
	}
	return nil
}

// ParseExecutors validates and splits the executors knob: a comma-separated
// host:port list. Entries must carry an explicit numeric port (1..65535) —
// the coordinator dials exactly what the statement names, so a missing or
// malformed port should fail at bind time, not as a confusing dial error
// mid-train. Duplicates are rejected: the same address twice would ship two
// shard sets to one process while the planner believes it has spare
// capacity for requeue.
func ParseExecutors(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > MaxExecutors {
		return nil, fmt.Errorf("spec: executors lists %d addresses, limit is %d", len(parts), MaxExecutors)
	}
	out := make([]string, 0, len(parts))
	seen := map[string]bool{}
	for _, part := range parts {
		addr := strings.TrimSpace(part)
		if addr == "" {
			return nil, fmt.Errorf("spec: executors has an empty address (stray comma?)")
		}
		host, port, err := net.SplitHostPort(addr)
		if err != nil {
			return nil, fmt.Errorf("spec: executors address %q is not host:port: %v", addr, err)
		}
		if host == "" {
			return nil, fmt.Errorf("spec: executors address %q has an empty host", addr)
		}
		p, err := strconv.Atoi(port)
		if err != nil || p < 1 || p > 65535 {
			return nil, fmt.Errorf("spec: executors address %q has an invalid port %q", addr, port)
		}
		if seen[addr] {
			return nil, fmt.Errorf("spec: executors lists %q twice", addr)
		}
		seen[addr] = true
		out = append(out, addr)
	}
	return out, nil
}

// Knobs are the bound uniform training controls of one statement.
type Knobs struct {
	Alpha     float64 // 0 = unset
	Decay     float64
	Step      string
	Epochs    int // 0 = unset
	Tol       float64
	Seed      int64
	Order     string
	Parallel  string
	Workers   int
	Shards    int
	ShardBy   string
	Executors []string // remote executor addresses; empty = in-process
	MRS       int
	Reservoir int
	Solver    string
	Threshold float64 // NaN = unset
	Degraded  bool    // skip quarantined pages in source scans
}

// SplitKnobs separates the uniform knobs from task-specific WITH pairs
// and binds/type-checks the knob side.
func SplitKnobs(with []Param) (Knobs, []Param, error) {
	known := map[string]bool{}
	for _, s := range KnobSpecs {
		known[s.Key] = true
	}
	var knobPairs, rest []Param
	for _, pr := range with {
		if known[pr.Key] {
			knobPairs = append(knobPairs, pr)
		} else {
			rest = append(rest, pr)
		}
	}
	p, err := BindParams(KnobSpecs, knobPairs)
	if err != nil {
		return Knobs{}, nil, err
	}
	k := Knobs{
		Alpha:     p.Float(KnobAlpha),
		Decay:     p.Float(KnobDecay),
		Step:      p.Str(KnobStep),
		Epochs:    p.Int(KnobEpochs),
		Tol:       p.Float(KnobTol),
		Seed:      int64(p.Int(KnobSeed)),
		Order:     p.Str(KnobOrder),
		Parallel:  p.Str(KnobParallel),
		Workers:   p.Int(KnobWorkers),
		Shards:    p.Int(KnobShards),
		ShardBy:   p.Str(KnobShardBy),
		Executors: nil,
		MRS:       p.Int(KnobMRS),
		Reservoir: p.Int(KnobReservoir),
		Solver:    p.Str(KnobSolver),
		Threshold: p.Float(KnobThreshold),
		Degraded:  p.Str(KnobDegraded) == "true",
	}
	if execs, err := ParseExecutors(p.Str(KnobExecutors)); err != nil {
		return Knobs{}, nil, err
	} else {
		k.Executors = execs
	}
	// An explicit shards knob must be a positive partition count within the
	// shared MaxShards bound: shards=0 silently meaning "unsharded" would
	// mask a typo (the default 0 only means "no sharding" when omitted).
	for _, pr := range knobPairs {
		if pr.Key == KnobShards {
			if err := ValidateShardCount(pr.Val.Int); err != nil {
				return Knobs{}, nil, err
			}
		}
		if pr.Key == KnobShardBy && k.Shards == 0 && len(k.Executors) == 0 {
			return Knobs{}, nil, fmt.Errorf("spec: shard_by requires shards=K or executors=...")
		}
	}
	// Distributed training is the sharded mode with remote workers, so the
	// shards knob composes with executors (it pins K); everything else in
	// the exclusive set conflicts with it exactly as it does with shards.
	sharded := k.Shards > 0 || len(k.Executors) > 0
	exclusive := 0
	for _, on := range []bool{k.Parallel != "none", k.MRS > 0, k.Reservoir > 0, sharded} {
		if on {
			exclusive++
		}
	}
	if exclusive > 1 {
		return Knobs{}, nil, fmt.Errorf("spec: parallel, mrs, reservoir and shards/executors are mutually exclusive")
	}
	// Reject explicitly-written knobs the selected trainer would silently
	// ignore (defaults are fine): baseline solvers have no IGD step/order
	// machinery, and the sampling trainers have no ordering or tolerance.
	rejectExplicit := func(mode string, keys ...string) error {
		for _, pr := range knobPairs {
			for _, key := range keys {
				if pr.Key == key {
					return fmt.Errorf("spec: %s ignores %s — remove it or drop %s", mode, pr.Key, mode)
				}
			}
		}
		return nil
	}
	if k.Solver != "igd" {
		if exclusive > 0 {
			return Knobs{}, nil, fmt.Errorf("spec: solver=%s does not combine with parallel/mrs/reservoir/shards", k.Solver)
		}
		if err := rejectExplicit("solver="+k.Solver, KnobOrder, KnobStep, KnobDecay); err != nil {
			return Knobs{}, nil, err
		}
	}
	if k.MRS > 0 {
		if err := rejectExplicit("mrs", KnobOrder, KnobTol); err != nil {
			return Knobs{}, nil, err
		}
	}
	if k.Reservoir > 0 {
		if err := rejectExplicit("reservoir", KnobOrder, KnobTol); err != nil {
			return Knobs{}, nil, err
		}
	}
	// Sharded training runs exactly one worker per shard; an explicit
	// workers knob would be silently ignored.
	if k.Shards > 0 {
		if err := rejectExplicit("shards", KnobWorkers); err != nil {
			return Knobs{}, nil, err
		}
	}
	if len(k.Executors) > 0 {
		if err := rejectExplicit("executors", KnobWorkers); err != nil {
			return Knobs{}, nil, err
		}
	}
	return k, rest, nil
}

// StepRule builds the statement's step rule; alpha0 resolves unset alpha.
func (k Knobs) StepRule(alpha0 float64) core.StepRule {
	a := k.Alpha
	if a == 0 {
		a = alpha0
	}
	switch k.Step {
	case "constant":
		return core.ConstantStep{A: a}
	case "diminishing":
		p := k.Decay
		if p <= 0 || p > 1 {
			p = 1
		}
		return core.DiminishingStep{A0: a, P: p}
	default:
		rho := k.Decay
		if rho <= 0 || rho >= 1 {
			rho = 0.95
		}
		return core.GeometricStep{A0: a, Rho: rho}
	}
}

// OrderStrategy maps the order knob onto §3.2's strategies.
func (k Knobs) OrderStrategy() core.OrderStrategy {
	switch k.Order {
	case "shuffle_always":
		return ordering.ShuffleAlways{}
	case "clustered":
		return ordering.Clustered{}
	default:
		return ordering.ShuffleOnce{}
	}
}

// ShardStrategy maps the shard_by knob onto the engine's partitioners.
func (k Knobs) ShardStrategy() engine.ShardStrategy {
	if k.ShardBy == "hash" {
		return engine.ShardHash
	}
	return engine.ShardRoundRobin
}

// ParallelMode maps the parallel knob onto §3.3's schemes.
func (k Knobs) ParallelMode() parallel.Mode {
	switch k.Parallel {
	case "pure_uda":
		return parallel.PureUDA
	case "lock":
		return parallel.Lock
	case "aig":
		return parallel.AIG
	default:
		return parallel.NoLock
	}
}

// Outcome reports one completed training run, whichever trainer ran it.
type Outcome struct {
	Model  vector.Dense
	Epochs int
	Loss   float64 // NaN when the trainer kept no losses
	Method string  // human-readable dispatch description
}

// TrainDistributed runs the sharded IGD loop over remote executor
// processes (the WITH executors=... mode): the view partitions exactly
// like the in-process sharded trainer, the shards scatter to the listed
// bismarckd -executor daemons, and each epoch is one STEP round trip per
// shard merged by row-weighted averaging. It needs the TaskSpec, not
// just the built task: the executors rebuild the task from its registry
// name plus the Snapshot parameters, the same metadata-only path model
// restores use.
func TrainDistributed(ts *TaskSpec, task core.Task, k Knobs, view *engine.Table) (*Outcome, error) {
	if ts.Snapshot == nil {
		return nil, fmt.Errorf("spec: task %s cannot train on remote executors (no parameter snapshot to ship)", ts.Name)
	}
	epochs := k.Epochs
	if epochs <= 0 {
		epochs = 20
	}
	tr := &dist.Trainer{
		Executors:  k.Executors,
		TaskName:   ts.Name,
		TaskParams: ts.Snapshot(task),
		Task:       task,
		Step:       k.StepRule(0.1),
		OrderName:  k.Order,
		MaxEpochs:  epochs,
		Shards:     k.Shards,
		MaxShards:  MaxShards,
		Strategy:   k.ShardStrategy(),
		RelTol:     k.Tol,
		Seed:       k.Seed,
	}
	res, err := tr.Run(view)
	if err != nil {
		return nil, err
	}
	return &Outcome{Model: res.Model, Epochs: res.Epochs, Loss: res.FinalLoss(),
		Method: fmt.Sprintf("IGD/Distributed(executors=%d, %s)", len(k.Executors), tr.Strategy)}, nil
}

// TrainIGD dispatches the statement onto the matching IGD trainer — the
// sequential epoch loop, the parallel trainer, or the sampling trainers —
// driven entirely by the knobs. This is the single dispatch path of the
// unified architecture: no task-specific branching happens here.
func TrainIGD(task core.Task, k Knobs, view *engine.Table) (*Outcome, error) {
	epochs := k.Epochs
	if epochs <= 0 {
		epochs = 20
	}
	step := k.StepRule(0.1)
	switch {
	case k.MRS > 0:
		tr := &sampling.MRSTrainer{
			Task: task, Step: step, Passes: epochs, BufCap: k.MRS, Seed: k.Seed,
		}
		res, err := tr.Run(view)
		if err != nil {
			return nil, err
		}
		return &Outcome{Model: res.Model, Epochs: res.Epochs, Loss: res.FinalLoss(),
			Method: fmt.Sprintf("IGD/MRS(buf=%d)", k.MRS)}, nil

	case k.Reservoir > 0:
		tr := &sampling.SubsampleTrainer{
			Task: task, Step: step, MaxEpochs: epochs, BufCap: k.Reservoir, Seed: k.Seed,
		}
		res, err := tr.Run(view)
		if err != nil {
			return nil, err
		}
		return &Outcome{Model: res.Model, Epochs: res.Epochs, Loss: res.FinalLoss(),
			Method: fmt.Sprintf("IGD/Reservoir(buf=%d)", k.Reservoir)}, nil

	case k.Shards > 0:
		tr := &parallel.ShardedTrainer{
			Task: task, Step: step, MaxEpochs: epochs, Shards: k.Shards,
			Strategy: k.ShardStrategy(), RelTol: k.Tol, Order: k.OrderStrategy(), Seed: k.Seed,
		}
		res, err := tr.Run(view)
		if err != nil {
			return nil, err
		}
		return &Outcome{Model: res.Model, Epochs: res.Epochs, Loss: res.FinalLoss(),
			Method: fmt.Sprintf("IGD/Sharded×%d(%s)", k.Shards, tr.Strategy)}, nil

	case k.Parallel != "none":
		workers := k.Workers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		tr := &parallel.Trainer{
			Task: task, Step: step, MaxEpochs: epochs, Workers: workers,
			Mode: k.ParallelMode(), RelTol: k.Tol, Order: k.OrderStrategy(), Seed: k.Seed,
		}
		res, err := tr.Run(view)
		if err != nil {
			return nil, err
		}
		return &Outcome{Model: res.Model, Epochs: res.Epochs, Loss: res.FinalLoss(),
			Method: fmt.Sprintf("IGD/%s×%d", tr.Mode, workers)}, nil

	default:
		tr := &core.Trainer{
			Task: task, Step: step, MaxEpochs: epochs, RelTol: k.Tol,
			Order: k.OrderStrategy(), Seed: k.Seed,
		}
		res, err := tr.Run(view)
		if err != nil {
			return nil, err
		}
		return &Outcome{Model: res.Model, Epochs: res.Epochs, Loss: res.FinalLoss(),
			Method: "IGD"}, nil
	}
}
