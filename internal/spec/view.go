package spec

import (
	"fmt"
	"strings"

	"bismarck/internal/engine"
)

// ViewOptions tunes the projection.
type ViewOptions struct {
	// OptionalLabel lets the last schema column be absent from the source
	// (PREDICT over unlabeled data); missing labels are zero-filled and
	// HasLabel reports false.
	OptionalLabel bool
	// Degraded scans the source skipping quarantined pages instead of
	// failing on the first corrupt one (WITH degraded=true); the skipped
	// page/row counts land in View.Skipped so the statement result can
	// report them. Off by default: silent data loss must be opted into.
	Degraded bool
}

// View is a source table projected into a task's canonical layout.
type View struct {
	Table *engine.Table
	// HasLabel reports whether the last column holds real source data (as
	// opposed to the zero fill of OptionalLabel projections).
	HasLabel bool
	// Skipped counts what a Degraded projection stepped over (zero for
	// strict projections or clean sources). SkippedRows is a lower bound —
	// a page whose record count was never readable counts its rows as 0.
	Skipped engine.DegradedStats
}

// ProjectView materializes the statement's select/where/column/label
// clauses over the source table as an in-memory view in the task's
// canonical layout:
//
//   - the WHERE predicates filter rows;
//   - a leading int64 "id"/"t" column is synthesized as the row number
//     when the source has no column of that name;
//   - the LABEL clause binds the last schema column; the COLUMN clause
//     binds the remaining data columns in order; unbound columns resolve
//     by name, then by unique compatible type;
//   - vector-typed columns adapt to the source's dense/sparse flavor, and
//     int64 sources are cast into float64 targets.
//
// Training then shuffles the view, never the user's table.
func ProjectView(src *engine.Table, st *Statement, schema engine.Schema, opt ViewOptions) (*View, error) {
	selected, err := selectedColumns(src, st.Select)
	if err != nil {
		return nil, err
	}
	filter, err := compileWhere(src, st.Where)
	if err != nil {
		return nil, err
	}

	n := len(schema)
	srcIdx := make([]int, n) // source column per target, -1 = synthesize/zero-fill
	for i := range srcIdx {
		srcIdx[i] = -2 // unresolved
	}

	// A leading (id|t) int64 column is synthesizable.
	synthesizable := schema[0].Type == engine.TInt64 &&
		(schema[0].Name == "id" || schema[0].Name == "t")

	// LABEL binds the last column.
	labelIdx := n - 1
	if st.Label != "" {
		ci, err := findSelected(src, selected, st.Label)
		if err != nil {
			return nil, err
		}
		if !typeCompatible(schema[labelIdx].Type, src.Schema[ci].Type) {
			return nil, fmt.Errorf("spec: label column %q has type %s, task wants %s",
				st.Label, src.Schema[ci].Type, schema[labelIdx].Type)
		}
		srcIdx[labelIdx] = ci
	}

	// COLUMN binds the remaining data columns in order.
	mappable := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i == 0 && synthesizable {
			continue
		}
		if i == labelIdx && srcIdx[labelIdx] != -2 {
			continue
		}
		mappable = append(mappable, i)
	}
	if len(st.Columns) > len(mappable) {
		return nil, fmt.Errorf("spec: COLUMN lists %d columns, task layout has room for %d",
			len(st.Columns), len(mappable))
	}
	for k, name := range st.Columns {
		ti := mappable[k]
		ci, err := findSelected(src, selected, name)
		if err != nil {
			return nil, err
		}
		if !typeCompatible(schema[ti].Type, src.Schema[ci].Type) {
			return nil, fmt.Errorf("spec: column %q has type %s, task column %q wants %s",
				name, src.Schema[ci].Type, schema[ti].Name, schema[ti].Type)
		}
		srcIdx[ti] = ci
	}

	// Default resolution for whatever is still unresolved. An optional
	// label only binds by exact name — silently adopting some other float
	// column would fabricate accuracy numbers against non-label data.
	for ti := 0; ti < n; ti++ {
		if srcIdx[ti] != -2 {
			continue
		}
		var ci int
		if ti == labelIdx && opt.OptionalLabel {
			ci = resolveByName(src, selected, srcIdx[:], schema[ti])
		} else {
			ci = resolveDefault(src, selected, srcIdx[:], schema[ti])
		}
		switch {
		case ci >= 0:
			srcIdx[ti] = ci
		case ti == 0 && synthesizable:
			srcIdx[ti] = -1 // row number
		case ti == labelIdx && opt.OptionalLabel:
			srcIdx[ti] = -1 // zero fill
		default:
			return nil, fmt.Errorf("spec: cannot resolve task column %q (%s) in table %s — name it with %s",
				schema[ti].Name, schema[ti].Type, src.Name, clauseFor(ti == labelIdx))
		}
	}

	// Output schema: canonical names, source-adapted vector types.
	out := make(engine.Schema, n)
	for i, c := range schema {
		out[i] = c
		if srcIdx[i] >= 0 && isVec(c.Type) && isVec(src.Schema[srcIdx[i]].Type) {
			out[i].Type = src.Schema[srcIdx[i]].Type
		}
	}

	// The projection runs through the zero-allocation scratch machinery:
	// the source is decoded through reusable buffers, one row tuple is
	// reused for every output row (Insert encodes it immediately, and the
	// cache builder copies it into its slabs), and the finished view is
	// born with a primed decoded-row cache so the trainers' first epoch
	// never pays an insert-encode-decode round trip. Priming honors the
	// same budget Table.Materialize enforces — a source past the limit
	// must not get a full decoded copy forced on it here.
	view := engine.NewMemTable(src.Name+"_view", out)
	var builder *engine.MatBuilder
	if src.Cacheable() {
		builder = engine.NewMatBuilder(out)
	}
	row := make(engine.Tuple, n)
	rowNum := int64(0)
	scanRow := func(tp engine.Tuple) error {
		ok, err := filter(tp)
		if err != nil || !ok {
			return err
		}
		for i := range row {
			switch {
			case srcIdx[i] >= 0:
				row[i] = castValue(tp[srcIdx[i]], out[i].Type)
			case i == 0:
				row[i] = engine.I64(rowNum)
			default:
				row[i] = engine.F64(0)
			}
		}
		rowNum++
		if builder != nil {
			if err := builder.Add(row); err != nil {
				return err
			}
		}
		return view.Insert(row)
	}
	var skipped engine.DegradedStats
	if opt.Degraded {
		skipped, err = src.ScanReuseDegraded(scanRow)
	} else {
		err = src.ScanReuse(scanRow)
	}
	if err != nil {
		return nil, err
	}
	if builder != nil {
		if err := view.PrimeCache(builder); err != nil {
			return nil, err
		}
	}
	return &View{Table: view, HasLabel: srcIdx[labelIdx] >= 0, Skipped: skipped}, nil
}

func clauseFor(label bool) string {
	if label {
		return "LABEL"
	}
	return "COLUMN"
}

func isVec(t engine.Type) bool {
	return t == engine.TDenseVec || t == engine.TSparseVec
}

// typeCompatible reports whether a source column can feed a target type.
func typeCompatible(target, src engine.Type) bool {
	if target == src {
		return true
	}
	if isVec(target) && isVec(src) {
		return true
	}
	// Integer labels/ratings are fine where floats are expected.
	if target == engine.TFloat64 && src == engine.TInt64 {
		return true
	}
	return false
}

func castValue(v engine.Value, target engine.Type) engine.Value {
	if target == engine.TFloat64 && v.Type == engine.TInt64 {
		return engine.F64(float64(v.Int))
	}
	return v
}

// selectedColumns resolves the SELECT list into a source-column index set
// (nil = all).
func selectedColumns(src *engine.Table, sel []string) (map[int]bool, error) {
	if len(sel) == 0 || len(sel) == 1 && sel[0] == "*" {
		return nil, nil
	}
	out := make(map[int]bool, len(sel))
	for _, name := range sel {
		ci := src.Schema.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("spec: table %s has no column %q", src.Name, name)
		}
		out[ci] = true
	}
	return out, nil
}

func inSelected(selected map[int]bool, ci int) bool {
	return selected == nil || selected[ci]
}

// findSelected resolves a column name, requiring it to be in the SELECT
// list when one was given.
func findSelected(src *engine.Table, selected map[int]bool, name string) (int, error) {
	ci := src.Schema.ColIndex(name)
	if ci < 0 {
		return 0, fmt.Errorf("spec: table %s has no column %q", src.Name, name)
	}
	if !inSelected(selected, ci) {
		return 0, fmt.Errorf("spec: column %q is not in the SELECT list", name)
	}
	return ci, nil
}

func columnInUse(used []int, ci int) bool {
	for _, u := range used {
		if u == ci {
			return true
		}
	}
	return false
}

// resolveByName finds an unbound target's source column by exact name
// match only.
func resolveByName(src *engine.Table, selected map[int]bool, used []int, target engine.Column) int {
	if ci := src.Schema.ColIndex(target.Name); ci >= 0 &&
		inSelected(selected, ci) && !columnInUse(used, ci) && typeCompatible(target.Type, src.Schema[ci].Type) {
		return ci
	}
	return -1
}

// resolveDefault finds the source column for an unbound target: same name
// first, then a unique type-compatible candidate not already used.
func resolveDefault(src *engine.Table, selected map[int]bool, used []int, target engine.Column) int {
	if ci := resolveByName(src, selected, used, target); ci >= 0 {
		return ci
	}
	cand := -1
	for ci, c := range src.Schema {
		if !inSelected(selected, ci) || columnInUse(used, ci) || !typeCompatible(target.Type, c.Type) {
			continue
		}
		if cand >= 0 {
			return -1 // ambiguous
		}
		cand = ci
	}
	return cand
}

// compileWhere builds the row filter of the ANDed predicates.
func compileWhere(src *engine.Table, preds []Predicate) (func(engine.Tuple) (bool, error), error) {
	if len(preds) == 0 {
		return func(engine.Tuple) (bool, error) { return true, nil }, nil
	}
	type cmp struct {
		col int
		op  string
		val Literal
	}
	cmps := make([]cmp, len(preds))
	for i, p := range preds {
		ci := src.Schema.ColIndex(p.Col)
		if ci < 0 {
			return nil, fmt.Errorf("spec: WHERE references unknown column %q", p.Col)
		}
		switch src.Schema[ci].Type {
		case engine.TInt64, engine.TFloat64:
			if p.Val.Kind != LitNumber {
				return nil, fmt.Errorf("spec: WHERE %s %s %s compares a numeric column to %s",
					p.Col, p.Op, p.Val, p.Val)
			}
		case engine.TString:
			if _, ok := p.Val.Text(); !ok || p.Op != "=" && p.Op != "!=" {
				return nil, fmt.Errorf("spec: string column %q supports only = / != against a string", p.Col)
			}
		default:
			return nil, fmt.Errorf("spec: WHERE cannot compare column %q of type %s",
				p.Col, src.Schema[ci].Type)
		}
		cmps[i] = cmp{col: ci, op: p.Op, val: p.Val}
	}
	return func(tp engine.Tuple) (bool, error) {
		for _, c := range cmps {
			v := tp[c.col]
			var ok bool
			if v.Type == engine.TString {
				want, _ := c.val.Text()
				eq := v.Str == want
				ok = c.op == "=" && eq || c.op == "!=" && !eq
			} else {
				x := v.Float
				if v.Type == engine.TInt64 {
					x = float64(v.Int)
				}
				y := c.val.Num
				switch c.op {
				case "=":
					ok = x == y
				case "!=":
					ok = x != y
				case "<":
					ok = x < y
				case "<=":
					ok = x <= y
				case ">":
					ok = x > y
				case ">=":
					ok = x >= y
				}
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}, nil
}

// DescribeParams renders a spec's parameter list for SHOW TASKS.
func DescribeParams(specs []ParamSpec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		p := s.Key
		if s.Kind == PEnum {
			p += "=" + strings.Join(s.Enum, "|")
		} else if s.Default != nil {
			p += "=" + s.Default.String()
		}
		parts[i] = p
	}
	return strings.Join(parts, ", ")
}
