package sqlish

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/spec"
)

// testGuard is a minimal per-name RW-lock Guard (the server package ships
// the production implementation; sqlish cannot import it without a cycle).
type testGuard struct {
	mu    sync.Mutex
	locks map[string]*sync.RWMutex
}

func newTestGuard() *testGuard { return &testGuard{locks: map[string]*sync.RWMutex{}} }

func (g *testGuard) get(name string) *sync.RWMutex {
	g.mu.Lock()
	defer g.mu.Unlock()
	l, ok := g.locks[name]
	if !ok {
		l = &sync.RWMutex{}
		g.locks[name] = l
	}
	return l
}

func (g *testGuard) Lock(name string) func()  { l := g.get(name); l.Lock(); return l.Unlock }
func (g *testGuard) RLock(name string) func() { l := g.get(name); l.RLock(); return l.RUnlock }

// TestUnknownModelError pins the typed error of the satellite fix: a
// PREDICT/EVALUATE against a never-trained model must surface as
// *UnknownModelError carrying the name and the SHOW MODELS hint, not as a
// raw catalog error.
func TestUnknownModelError(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(50, 5))

	for _, stmt := range []string{
		`SELECT * FROM papers TO PREDICT USING ghost;`,
		`SELECT * FROM papers TO EVALUATE USING ghost;`,
	} {
		err := s.Exec(stmt)
		var ume *UnknownModelError
		if !errors.As(err, &ume) {
			t.Fatalf("%s\n=> %v (want *UnknownModelError)", stmt, err)
		}
		if ume.Model != "ghost" {
			t.Fatalf("error names model %q", ume.Model)
		}
		if !strings.Contains(err.Error(), "SHOW MODELS") {
			t.Fatalf("error misses the SHOW MODELS hint: %v", err)
		}
	}

	// A model table without metadata is a different failure and must keep
	// its specific message.
	if _, err := s.Cat.Create("orphan", ModelSchema); err != nil {
		t.Fatal(err)
	}
	err := s.Exec(`SELECT * FROM papers TO PREDICT USING orphan;`)
	var ume *UnknownModelError
	if errors.As(err, &ume) || err == nil || !strings.Contains(err.Error(), "metadata") {
		t.Fatalf("orphan model: %v", err)
	}
}

// TestShowModels lists trained models with their task names.
func TestShowModels(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(80, 5))
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2 INTO alpha;`)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN svm WITH epochs=2 INTO beta;`)

	out.Reset()
	mustExec(t, s, `SHOW MODELS;`)
	got := out.String()
	if !strings.Contains(got, "alpha") || !strings.Contains(got, "task=lr") ||
		!strings.Contains(got, "beta") || !strings.Contains(got, "task=svm") {
		t.Fatalf("SHOW MODELS output:\n%s", got)
	}
	if strings.Contains(got, "papers") {
		t.Fatalf("data table listed as a model:\n%s", got)
	}
}

// TestPreSaveAbortsPersist proves the PreSave hook (the job layer's cancel
// boundary) discards a trained result without touching the persisted
// model: the old generation keeps serving.
func TestPreSaveAbortsPersist(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(120, 5))
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=3, seed=1 INTO m;`)
	before := out.String()

	sentinel := errors.New("canceled")
	s.PreSave = func(model string) error {
		if model != "m" {
			t.Fatalf("PreSave got model %q", model)
		}
		return sentinel
	}
	err := s.Exec(`SELECT vec, label FROM papers TO TRAIN lr WITH epochs=9, seed=2 INTO m;`)
	if !errors.Is(err, sentinel) {
		t.Fatalf("train: %v", err)
	}
	s.PreSave = nil

	// The first generation must still load and score.
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO PREDICT USING m;`)
	if !strings.Contains(out.String(), "predicted 120 rows") {
		t.Fatalf("old model gone: %s\n(before: %s)", out.String(), before)
	}
}

// TestReplaceTableTornReadRegression is the satellite regression test: one
// session keeps replacing a result table via PREDICT ... INTO out while
// others project views FROM it. Under the shared Guard every reader must
// see either a complete generation (exactly N rows) or no table at all —
// never a half-replaced heap — and the race detector must stay quiet.
func TestReplaceTableTornReadRegression(t *testing.T) {
	cat := engine.NewCatalog()
	guard := newTestGuard()
	writer := &Session{Cat: cat, Out: &bytes.Buffer{}, Guard: guard}
	copyInto(t, writer, "papers", data.Forest(200, 5))
	mustExec(t, writer, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2 INTO m;`)

	const rounds = 60
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := writer.Exec(`SELECT * FROM papers TO PREDICT INTO out USING m;`); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	// Readers project (id, score) views straight off the contested table.
	readSchema := engine.Schema{
		{Name: "id", Type: engine.TInt64},
		{Name: "score", Type: engine.TFloat64},
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reader := &Session{Cat: cat, Out: &bytes.Buffer{}, Guard: guard}
			st := &spec.Statement{Kind: spec.KindPredict, From: "out"}
			for i := 0; i < rounds; i++ {
				view, err := reader.projectFrom(st, readSchema, spec.ViewOptions{})
				if err != nil {
					// Before the first generation lands the table is absent;
					// that is the only acceptable error.
					if strings.Contains(err.Error(), `no table "out"`) {
						continue
					}
					errs <- fmt.Errorf("reader: %w", err)
					return
				}
				if n := view.Table.NumRows(); n != 200 {
					errs <- fmt.Errorf("torn read: view has %d rows, want 200", n)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLockKeyCollapsesMetaSuffix: a model table, its metadata side table,
// and any deeper __meta chain must contend on one lock key, or a writer
// holding the model lock could race a reader locking the side table
// directly.
func TestLockKeyCollapsesMetaSuffix(t *testing.T) {
	for name, want := range map[string]string{
		"m":             "m",
		"m__meta":       "m",
		"m__meta__meta": "m",
		"meta":          "meta",
		"x__metaphor":   "x__metaphor",
		"__meta":        "",
	} {
		if got := lockKey(name); got != want {
			t.Errorf("lockKey(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestValidateNamesEnforcedAtRun: the session layer enforces the name
// rules itself — spec.Statement is exported, so a programmatically built
// statement must not bypass the parser's checks.
func TestValidateNamesEnforcedAtRun(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(60, 5))

	// __meta aliasing via a hand-built statement.
	err := s.Run(&spec.Statement{Kind: spec.KindTrain, From: "papers",
		Task: "lr", Into: "x__meta"})
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("programmatic __meta INTO: %v", err)
	}
	// Path tricks likewise.
	err = s.Run(&spec.Statement{Kind: spec.KindTrain, From: "papers",
		Task: "lr", Into: "../evil"})
	if err == nil || !strings.Contains(err.Error(), "invalid table name") {
		t.Fatalf("programmatic traversal INTO: %v", err)
	}

	// PREDICT INTO its own model would drop the model for the score table.
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2 INTO m;`)
	err = s.Run(&spec.Statement{Kind: spec.KindPredict, From: "papers",
		Model: "m", Into: "m"})
	if err == nil || !strings.Contains(err.Error(), "overwrite the model") {
		t.Fatalf("self-destructive predict: %v", err)
	}
	if err := s.Exec(`SELECT * FROM papers TO PREDICT INTO m USING m;`); err == nil {
		t.Fatal("parsed self-destructive predict accepted")
	}
	// INTO the FROM source would drop the dataset.
	err = s.Run(&spec.Statement{Kind: spec.KindTrain, From: "papers",
		Task: "lr", Into: "papers"})
	if err == nil || !strings.Contains(err.Error(), "overwrite the FROM") {
		t.Fatalf("self-destructive train INTO source: %v", err)
	}
	// The model survived all of the rejected statements.
	mustExec(t, s, `SELECT * FROM papers TO PREDICT USING m;`)
}

// TestCaseCollisionRejectedBeforeTraining: on a file catalog, INTO a name
// differing from an existing table only by case fails up front (the heap
// files would collide on a case-insensitive filesystem) — not after the
// training run.
func TestCaseCollisionRejectedBeforeTraining(t *testing.T) {
	cat, err := engine.OpenFileCatalog(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := &Session{Cat: cat, Out: &bytes.Buffer{}}
	copyInto(t, s, "papers", data.Forest(60, 5))
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO forest;`)

	err = s.Exec(`SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO Forest;`)
	if err == nil || !strings.Contains(err.Error(), "case-insensitively") {
		t.Fatalf("case collision: %v", err)
	}
	// Retraining under the exact same name stays legal.
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO forest;`)
}
