package sqlish

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bismarck/internal/data"
	"bismarck/internal/engine"
)

// snapshotModel reads the persisted coefficient table into a map.
func snapshotModel(t *testing.T, s *Session, name string) map[int64]float64 {
	t.Helper()
	tbl, err := s.Cat.Get(name)
	if err != nil {
		t.Fatalf("model %q: %v", name, err)
	}
	got := map[int64]float64{}
	if err := tbl.Scan(func(tp engine.Tuple) error {
		got[tp[0].Int] = tp[1].Float
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatalf("model %q is empty", name)
	}
	return got
}

func sameModel(a, b map[int64]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestMetaFillFailureKeepsOldGeneration is the satellite regression test
// for the pre-shadow partial-failure bug: the old path had already
// replaced the coefficient table when the __meta fill failed, leaving new
// coefficients paired with no metadata. Under the shadow protocol the two
// tables commit together or not at all: a meta-fill failure must leave the
// ENTIRE previous generation loading and scoring.
func TestMetaFillFailureKeepsOldGeneration(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(120, 5))
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=3, seed=1 INTO m;`)
	gen1 := snapshotModel(t, s, "m")

	boom := errors.New("injected meta-fill failure")
	metaFillFault = func(model string) error {
		if model != "m" {
			t.Fatalf("fault hook got model %q", model)
		}
		return boom
	}
	defer func() { metaFillFault = nil }()
	err := s.Exec(`SELECT vec, label FROM papers TO TRAIN lr WITH epochs=9, seed=2 INTO m;`)
	if !errors.Is(err, boom) {
		t.Fatalf("retrain: %v", err)
	}
	metaFillFault = nil

	// The coefficient table still holds generation 1 — not the new epochs=9
	// coefficients the old path would have left behind.
	if !sameModel(gen1, snapshotModel(t, s, "m")) {
		t.Fatal("failed save replaced the coefficient table")
	}
	// And the pair still loads as a unit: restore-and-score works.
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO PREDICT USING m;`)
	if !strings.Contains(out.String(), "predicted 120 rows") {
		t.Fatalf("old generation does not score: %s", out.String())
	}
	// No shadow debris registered.
	for _, n := range s.Cat.Names() {
		if strings.Contains(n, engine.ShadowSuffix) {
			t.Fatalf("shadow table leaked into catalog: %v", s.Cat.Names())
		}
	}
}

// trainStmt are two distinguishable generations for the crash matrix: the
// recovered model's task name tells which generation survived.
const (
	gen1Train = `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=1 INTO m;`
	gen2Train = `SELECT vec, label FROM papers TO TRAIN svm WITH epochs=2, seed=2 INTO m;`
)

// openSession opens a file catalog and a session over it.
func openSession(t *testing.T, dir string) *Session {
	t.Helper()
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &Session{Cat: cat, Out: &bytes.Buffer{}}
}

// TestSaveWindowCrashMatrix drives the FULL statement path (TRAIN → IGD →
// saveModel → Swap) into a simulated kill at every hook point of the save
// window, then reopens the catalog like a restarted daemon and asserts the
// acceptance invariant: the model is either the complete old generation or
// the complete new one — coefficients and __meta consistent, never empty,
// never mixed — and recovery swept every shadow heap.
func TestSaveWindowCrashMatrix(t *testing.T) {
	cases := []struct {
		name     string
		install  func(h *engine.CatalogHooks)
		wantTask string // which generation must be serving after recovery
	}{
		{"before-shadow-sync", func(h *engine.CatalogHooks) {
			h.BeforeShadowSync = func([]string) error { return engine.ErrInjectedCrash }
		}, "lr"},
		{"after-shadow-sync", func(h *engine.CatalogHooks) {
			h.AfterShadowSync = func([]string) error { return engine.ErrInjectedCrash }
		}, "lr"},
		{"after-commit-rename", func(h *engine.CatalogHooks) {
			h.AfterCommit = func([]string) error { return engine.ErrInjectedCrash }
		}, "svm"},
		{"between-heap-renames", func(h *engine.CatalogHooks) {
			h.AfterHeapRename = func(string) error { return engine.ErrInjectedCrash }
		}, "svm"},
		{"before-marker-clear", func(h *engine.CatalogHooks) {
			h.BeforeMarkerClear = func([]string) error { return engine.ErrInjectedCrash }
		}, "svm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := testCatalogDir(t)
			s := openSession(t, dir)
			copyInto(t, s, "papers", data.Forest(120, 5))
			mustExec(t, s, gen1Train)
			if err := s.Cat.Save(); err != nil {
				t.Fatal(err)
			}

			tc.install(&s.Cat.Hooks)
			if err := s.Exec(gen2Train); !errors.Is(err, engine.ErrInjectedCrash) {
				t.Fatalf("retrain under injected crash: %v", err)
			}
			s.Cat.Abandon() // the daemon is "dead"

			// Restart: reopen the directory, load the model, score with it.
			re := openSession(t, dir)
			defer re.Cat.Close()
			taskName, _, err := re.loadMeta("m")
			if err != nil {
				t.Fatalf("recovered model does not load: %v (recovery: %+v)", err, re.Cat.Recovery)
			}
			if taskName != tc.wantTask {
				t.Fatalf("recovered generation is task %q, want %q", taskName, tc.wantTask)
			}
			snapshotModel(t, re, "m") // non-empty coefficients
			copyInto(t, re, "papers2", data.Forest(40, 5))
			mustExec(t, re, `SELECT * FROM papers2 TO PREDICT USING m;`)
		})
	}
}

// TestPredictIntoCrashKeepsOldResult: the PREDICT ... INTO path rides the
// same protocol — a kill before its commit leaves the previous result
// table complete; after its commit, the new one.
func TestPredictIntoCrashKeepsOldResult(t *testing.T) {
	dir := testCatalogDir(t)
	s := openSession(t, dir)
	copyInto(t, s, "papers", data.Forest(100, 5))
	mustExec(t, s, gen1Train)
	mustExec(t, s, `SELECT * FROM papers TO PREDICT INTO out USING m;`)
	if err := s.Cat.Save(); err != nil {
		t.Fatal(err)
	}
	before := snapshotModel(t, s, "out") // (id, score) rows reuse the scanner

	s.Cat.Hooks.AfterShadowSync = func([]string) error { return engine.ErrInjectedCrash }
	copyInto(t, s, "papers2", data.Forest(30, 5))
	err := s.Exec(`SELECT * FROM papers2 TO PREDICT INTO out USING m;`)
	if !errors.Is(err, engine.ErrInjectedCrash) {
		t.Fatalf("predict under injected crash: %v", err)
	}
	s.Cat.Abandon()

	re := openSession(t, dir)
	defer re.Cat.Close()
	after := snapshotModel(t, re, "out")
	if len(after) != 100 || !sameModel(before, after) {
		t.Fatalf("result table torn: %d rows recovered, want the intact 100-row generation", len(after))
	}
}

// TestConcurrentSaveFillsSerialize: two sessions saving the same model
// name queue on the shadow fill lock instead of colliding on the shadow
// heap — both must succeed, last commit wins, and readers never error.
func TestConcurrentSaveFillsSerialize(t *testing.T) {
	cat := engine.NewCatalog()
	guard := newTestGuard()
	seedSess := &Session{Cat: cat, Out: &bytes.Buffer{}, Guard: guard}
	copyInto(t, seedSess, "papers", data.Forest(150, 5))
	mustExec(t, seedSess, gen1Train)

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed int) {
			sess := &Session{Cat: cat, Out: &bytes.Buffer{}, Guard: guard}
			var err error
			for r := 0; r < 10 && err == nil; r++ {
				err = sess.Exec(gen2Train)
			}
			done <- err
		}(i)
	}
	reader := &Session{Cat: cat, Out: &bytes.Buffer{}, Guard: guard}
	for i := 0; i < 20; i++ {
		if err := reader.Exec(`SELECT * FROM papers TO PREDICT USING m;`); err != nil {
			t.Fatalf("reader during concurrent saves: %v", err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent saver: %v", err)
		}
	}
	snapshotModel(t, reader, "m")
}
