package sqlish

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/spec"
	"bismarck/internal/tasks"
)

// declSession builds an in-memory session with no session-level defaults,
// so statements control everything.
func declSession(t *testing.T) (*Session, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	return &Session{Cat: engine.NewCatalog(), Out: &out}, &out
}

func mustExec(t *testing.T, s *Session, stmt string) {
	t.Helper()
	if err := s.Exec(stmt); err != nil {
		t.Fatalf("%s\n=> %v", stmt, err)
	}
}

func copyInto(t *testing.T, s *Session, name string, src *engine.Table) {
	t.Helper()
	dst, err := s.Cat.Create(name, src.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
}

// TestDeclarativeLRRoundTrip trains LR through the new grammar, round-trips
// the persisted model table via PREDICT, and checks EVALUATE metrics.
func TestDeclarativeLRRoundTrip(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(600, 5))

	mustExec(t, s, `SELECT vec, label FROM papers
		TO TRAIN lr
		WITH alpha=0.2, epochs=10, order=shuffle_once, seed=3
		COLUMN vec LABEL label
		INTO m;`)
	if !strings.Contains(out.String(), "LR trained") {
		t.Fatalf("train output: %s", out.String())
	}
	if _, err := s.Cat.Get("m"); err != nil {
		t.Fatal("model table not persisted")
	}
	if _, err := s.Cat.Get("m__meta"); err != nil {
		t.Fatal("model metadata table not persisted")
	}

	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO PREDICT USING m;`)
	m := regexp.MustCompile(`accuracy ([0-9.]+)%`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("predict output: %s", out.String())
	}
	acc, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 75 {
		t.Fatalf("accuracy %.1f%% too low", acc)
	}

	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO EVALUATE USING m;`)
	if !strings.Contains(out.String(), "accuracy=") {
		t.Fatalf("evaluate output: %s", out.String())
	}

	// PREDICT INTO persists scores as a plain user table.
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO PREDICT INTO scores USING m;`)
	scores, err := s.Cat.Get("scores")
	if err != nil {
		t.Fatal(err)
	}
	if scores.NumRows() != 600 {
		t.Fatalf("scores rows: %d", scores.NumRows())
	}
}

// TestDeclarativeLMFRoundTrip trains LMF declaratively and round-trips the
// persisted factors via PREDICT / EVALUATE.
func TestDeclarativeLMFRoundTrip(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "ratings", data.MovieLens(40, 30, 800, 4, 0.2, 9))

	mustExec(t, s, `SELECT row, col, rating FROM ratings
		TO TRAIN lmf
		WITH rank=4, alpha=0.05, epochs=25, mu=0.01, seed=2
		INTO mf;`)
	if !strings.Contains(out.String(), "LMF trained") {
		t.Fatalf("train output: %s", out.String())
	}

	out.Reset()
	mustExec(t, s, `SELECT * FROM ratings TO EVALUATE USING mf;`)
	m := regexp.MustCompile(`rmse=([0-9.]+)`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("evaluate output: %s", out.String())
	}
	rmse, _ := strconv.ParseFloat(m[1], 64)
	if rmse > 1.5 {
		t.Fatalf("rmse %.3f too high for in-sample factorization", rmse)
	}

	out.Reset()
	mustExec(t, s, `SELECT * FROM ratings TO PREDICT INTO preds USING mf;`)
	preds, err := s.Cat.Get("preds")
	if err != nil {
		t.Fatal(err)
	}
	if preds.NumRows() != 800 {
		t.Fatalf("preds rows: %d", preds.NumRows())
	}
}

// TestAllTasksReachableDeclaratively drives every registered task through
// TO TRAIN — the registry is the only dispatch, so this enumerates
// spec.Tasks() and fails if any task is missing a fixture or cannot train.
func TestAllTasksReachableDeclaratively(t *testing.T) {
	s, out := declSession(t)

	// Fixtures per canonical task name: source table + extra WITH text.
	copyInto(t, s, "dense", data.Forest(200, 5))
	copyInto(t, s, "ratings", data.MovieLens(20, 15, 300, 3, 0.2, 9))
	copyInto(t, s, "seqs", data.CoNLL(10, 30, 3, 5, 13))
	copyInto(t, s, "series", data.NoisySeries(30, 2, 0.1, 5))
	copyInto(t, s, "returns", data.ReturnsTable(150, 5, 3))

	multi := engine.NewMemTable("multisrc", tasks.DenseExampleSchema)
	err := data.Forest(200, 6).Scan(func(tp engine.Tuple) error {
		cls := 0.0
		if tp[2].Float > 0 {
			cls = 1
		}
		return multi.Insert(engine.Tuple{tp[0], tp[1], engine.F64(cls)})
	})
	if err != nil {
		t.Fatal(err)
	}
	copyInto(t, s, "multi", multi)

	edges := engine.NewMemTable("edgesrc", tasks.RatingSchema)
	for i := 0; i < 12; i++ {
		edges.MustInsert(engine.Tuple{
			engine.I64(int64(i)), engine.I64(int64((i + 1) % 12)), engine.F64(1)})
	}
	copyInto(t, s, "edges", edges)

	fixtures := map[string]struct {
		table string
		extra string
	}{
		"lr":        {"dense", ""},
		"svm":       {"dense", ""},
		"lsq":       {"dense", ""},
		"lasso":     {"dense", ", mu=0.001"},
		"softmax":   {"multi", ""},
		"lmf":       {"ratings", ", rank=3"},
		"crf":       {"seqs", ""},
		"kalman":    {"series", ""},
		"portfolio": {"returns", ""},
		"maxcut":    {"edges", ", rank=3"},
	}

	for _, ts := range spec.Tasks() {
		fx, ok := fixtures[ts.Name]
		if !ok {
			t.Fatalf("task %q is registered but has no declarative fixture — add one", ts.Name)
		}
		out.Reset()
		stmt := fmt.Sprintf(`SELECT * FROM %s TO TRAIN %s WITH epochs=3%s INTO model_%s;`,
			fx.table, ts.Name, fx.extra, ts.Name)
		mustExec(t, s, stmt)
		if !strings.Contains(out.String(), "trained") {
			t.Fatalf("%s: output %q", ts.Name, out.String())
		}
		if _, err := s.Cat.Get("model_" + ts.Name); err != nil {
			t.Fatalf("%s: model not persisted", ts.Name)
		}
		// Every task must also round-trip through EVALUATE (metrics or the
		// loss fallback).
		out.Reset()
		mustExec(t, s, fmt.Sprintf(`SELECT * FROM %s TO EVALUATE USING model_%s;`,
			fx.table, ts.Name))
		if out.Len() == 0 {
			t.Fatalf("%s: empty EVALUATE output", ts.Name)
		}
	}
	if len(fixtures) != len(spec.Tasks()) {
		t.Fatalf("fixtures for %d tasks, registry has %d", len(fixtures), len(spec.Tasks()))
	}
}

// TestOrderingParallelSamplingKnobs exercises every ordering, parallelism,
// and sampling mode through WITH over the single dispatch path.
func TestOrderingParallelSamplingKnobs(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(300, 5))

	cases := []struct {
		with   string
		method string
	}{
		{"order=shuffle_once", "IGD"},
		{"order=shuffle_always", "IGD"},
		{"order=clustered", "IGD"},
		{"parallel=pure_uda, workers=2", "IGD"},
		{"parallel=lock, workers=2", "IGD/Lock×2"},
		{"parallel=aig, workers=2", "IGD/AIG×2"},
		{"parallel=nolock, workers=2", "IGD/NoLock×2"},
		{"mrs=64", "IGD/MRS(buf=64)"},
		{"reservoir=64", "IGD/Reservoir(buf=64)"},
		{"solver=batch", "BatchGD"},
		{"solver=irls", "IRLS"},
	}
	for i, c := range cases {
		out.Reset()
		stmt := fmt.Sprintf(`SELECT * FROM papers TO TRAIN lr WITH epochs=3, %s INTO km_%d;`, c.with, i)
		mustExec(t, s, stmt)
		if !strings.Contains(out.String(), "via "+c.method) {
			t.Fatalf("WITH %s: output %q does not mention %q", c.with, out.String(), c.method)
		}
	}

	// ALS is LMF's solver.
	copyInto(t, s, "ratings", data.MovieLens(20, 15, 300, 3, 0.2, 9))
	out.Reset()
	mustExec(t, s, `SELECT * FROM ratings TO TRAIN lmf WITH rank=3, epochs=3, solver=als INTO am;`)
	if !strings.Contains(out.String(), "via ALS") {
		t.Fatalf("als output: %s", out.String())
	}
}

// TestDeclarativeErrors covers the statement-level failure modes.
func TestDeclarativeErrors(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(50, 5))

	cases := map[string]string{
		`SELECT * FROM papers TO TRAIN dnn INTO m`:                  "unknown task",
		`SELECT * FROM papers TO TRAIN lr WITH alpha='big' INTO m`:  "wants a number",
		`SELECT * FROM papers TO TRAIN lr WITH dim=1.5 INTO m`:      "wants an integer",
		`SELECT * FROM papers TO TRAIN lr WITH blobs=3 INTO m`:      "unknown parameter",
		`SELECT * FROM papers TO TRAIN lr WITH order=sorted INTO m`: "wants one of",
		`SELECT * FROM missing TO TRAIN lr INTO m`:                  "missing",
		`SELECT * FROM papers TO PREDICT USING nomodel`:             "nomodel",
		`SELECT vec FROM papers TO TRAIN lr LABEL label INTO m`:     "not in the SELECT list",
		`SELECT * FROM papers WHERE ghost = 1 TO TRAIN lr INTO m`:   "unknown column",
		`SELECT * FROM papers TO TRAIN lr WITH solver=als INTO m`:   "does not support solver",
		`SELECT * FROM papers TO TRAIN svm WITH solver=irls INTO m`: "does not support solver",
	}
	for stmt, want := range cases {
		err := s.Exec(stmt)
		if err == nil {
			t.Fatalf("%q: expected error", stmt)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("%q: error %q does not mention %q", stmt, err, want)
		}
	}

	// CRF has no per-tuple score: PREDICT must point at EVALUATE.
	copyInto(t, s, "seqs", data.CoNLL(6, 20, 3, 4, 13))
	mustExec(t, s, `SELECT * FROM seqs TO TRAIN crf WITH epochs=2 INTO cm;`)
	err := s.Exec(`SELECT * FROM seqs TO PREDICT USING cm`)
	if err == nil || !strings.Contains(err.Error(), "does not support PREDICT") {
		t.Fatalf("crf predict: %v", err)
	}
}

// TestWhereAndThresholdKnob checks row filtering and the predict
// threshold knob.
func TestWhereAndThresholdKnob(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(400, 5))

	mustExec(t, s, `SELECT * FROM papers WHERE id < 200 TO TRAIN lr WITH epochs=8, alpha=0.2 INTO m;`)
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers WHERE id >= 200 TO PREDICT USING m;`)
	if !strings.Contains(out.String(), "predicted 200 rows") {
		t.Fatalf("filtered predict: %s", out.String())
	}

	// threshold=1.01 over LR probabilities predicts nothing positive.
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO PREDICT WITH threshold=1.01 USING m;`)
	if !strings.Contains(out.String(), ": 0 positive") {
		t.Fatalf("threshold predict: %s", out.String())
	}
}

// TestFileCatalogPersistence round-trips a declaratively trained model
// through an on-disk catalog: train, close, reopen, predict.
func TestFileCatalogPersistence(t *testing.T) {
	dir := t.TempDir()
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	s := &Session{Cat: cat, Out: &out}
	dst, err := cat.Create("papers", tasks.DenseExampleSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.Forest(300, 5).CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `SELECT * FROM papers TO TRAIN svm WITH epochs=8, alpha=0.2 INTO m;`)
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	out.Reset()
	s2 := &Session{Cat: cat2, Out: &out}
	mustExec(t, s2, `SELECT * FROM papers TO PREDICT USING m;`)
	if !strings.Contains(out.String(), "accuracy") {
		t.Fatalf("reopened predict: %s", out.String())
	}
}

// TestShowTasks lists the registry.
func TestShowTasks(t *testing.T) {
	s, out := declSession(t)
	mustExec(t, s, `SHOW TASKS;`)
	for _, name := range []string{"lr", "svm", "lmf", "crf", "kalman", "portfolio", "maxcut", "softmax", "lasso", "lsq"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("SHOW TASKS missing %q:\n%s", name, out.String())
		}
	}
}

// TestLegacyQuotedComma is the parseArgs regression at the session level:
// a model name containing a comma survives the legacy path.
func TestLegacyQuotedComma(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(100, 5))
	mustExec(t, s, `SELECT LRTrain('my,model', 'papers', 'vec', 'label')`)
	if _, err := s.Cat.Get("my,model"); err != nil {
		t.Fatal("comma-named model not persisted")
	}
}

// TestPredictWiderVectors is the regression for the slice-bounds panic:
// predicting over vectors wider than the trained model must clamp, not
// panic.
func TestPredictWiderVectors(t *testing.T) {
	s, out := declSession(t)

	narrow := engine.NewMemTable("narrowsrc", tasks.DenseExampleSchema)
	wide := engine.NewMemTable("widesrc", tasks.DenseExampleSchema)
	for i := 0; i < 60; i++ {
		y := 1.0
		if i%2 == 0 {
			y = -1
		}
		narrow.MustInsert(engine.Tuple{
			engine.I64(int64(i)), engine.DenseV([]float64{y, -y, y * 0.5}), engine.F64(y)})
		wide.MustInsert(engine.Tuple{
			engine.I64(int64(i)), engine.DenseV([]float64{y, -y, y * 0.5, 9, 9, 9, 9, 9}), engine.F64(y)})
	}
	copyInto(t, s, "narrow", narrow)
	copyInto(t, s, "wide", wide)

	mustExec(t, s, `SELECT * FROM narrow TO TRAIN lr WITH epochs=5 INTO m;`)
	out.Reset()
	mustExec(t, s, `SELECT * FROM wide TO PREDICT USING m;`)
	if !strings.Contains(out.String(), "predicted 60 rows") {
		t.Fatalf("wide predict: %s", out.String())
	}
	out.Reset()
	mustExec(t, s, `SELECT * FROM wide TO EVALUATE USING m;`)
	if !strings.Contains(out.String(), "accuracy=") {
		t.Fatalf("wide evaluate: %s", out.String())
	}
}

// TestEvaluateThresholdKnob checks WITH threshold reaches the binary
// Evaluate hook rather than being silently dropped.
func TestEvaluateThresholdKnob(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(200, 5))
	mustExec(t, s, `SELECT * FROM papers TO TRAIN lr WITH epochs=8, alpha=0.2 INTO m;`)

	// An impossible threshold forces every prediction negative: recall 0.
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO EVALUATE WITH threshold=1.01 USING m;`)
	if !strings.Contains(out.String(), "recall=0.0000") {
		t.Fatalf("threshold evaluate: %s", out.String())
	}
}

// TestPredictIntoPreservedOnFailure checks a failing PREDICT INTO does not
// clobber the existing destination table.
func TestPredictIntoPreservedOnFailure(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(100, 5))
	mustExec(t, s, `SELECT * FROM papers TO TRAIN lr WITH epochs=5 INTO m;`)
	mustExec(t, s, `SELECT * FROM papers TO PREDICT INTO scores USING m;`)

	empty := engine.NewMemTable("emptysrc", tasks.DenseExampleSchema)
	copyInto(t, s, "empty", empty)
	if err := s.Exec(`SELECT * FROM empty TO PREDICT INTO scores USING m;`); err == nil {
		t.Fatal("predict over empty table should fail")
	}
	scores, err := s.Cat.Get("scores")
	if err != nil {
		t.Fatal("scores table destroyed by failing statement")
	}
	if scores.NumRows() != 100 {
		t.Fatalf("scores rows after failed statement: %d", scores.NumRows())
	}
}

// TestTrainWithSmallerDim is the regression for the WITH dim panic: a dim
// smaller than the dense feature width must truncate features, not crash.
func TestTrainWithSmallerDim(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(100, 5))
	mustExec(t, s, `SELECT * FROM papers TO TRAIN lr WITH epochs=3, dim=3 INTO m;`)
	if !strings.Contains(out.String(), "LR trained") {
		t.Fatalf("train output: %s", out.String())
	}
	// Multiclass models have per-class blocks; truncation must not corrupt
	// or overrun neighbouring classes either.
	multi := engine.NewMemTable("multisrc2", tasks.DenseExampleSchema)
	err := data.Forest(100, 6).Scan(func(tp engine.Tuple) error {
		cls := 0.0
		if tp[2].Float > 0 {
			cls = 1
		}
		return multi.Insert(engine.Tuple{tp[0], tp[1], engine.F64(cls)})
	})
	if err != nil {
		t.Fatal(err)
	}
	copyInto(t, s, "multi2", multi)
	mustExec(t, s, `SELECT * FROM multi2 TO TRAIN softmax WITH epochs=3, dim=3 INTO sm;`)
	mustExec(t, s, `SELECT * FROM multi2 TO EVALUATE USING sm;`)
}

// TestPredictNoLabelGuess checks PREDICT does not adopt an arbitrary float
// column as the label: without a column named like the task's label (or an
// explicit LABEL clause), no accuracy is reported.
func TestPredictNoLabelGuess(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(100, 5))
	mustExec(t, s, `SELECT * FROM papers TO TRAIN lr WITH epochs=5 INTO m;`)

	// (id, vec, score): score is NOT a label and must not be treated as one.
	scored := engine.NewMemTable("scoredsrc", engine.Schema{
		{Name: "id", Type: engine.TInt64},
		{Name: "vec", Type: engine.TDenseVec},
		{Name: "score", Type: engine.TFloat64},
	})
	err := data.Forest(50, 7).Scan(func(tp engine.Tuple) error {
		return scored.Insert(engine.Tuple{tp[0], tp[1], engine.F64(0.123)})
	})
	if err != nil {
		t.Fatal(err)
	}
	copyInto(t, s, "scored", scored)

	out.Reset()
	mustExec(t, s, `SELECT * FROM scored TO PREDICT USING m;`)
	got := out.String()
	if strings.Contains(got, "accuracy") {
		t.Fatalf("accuracy fabricated from a non-label column: %s", got)
	}
	if !strings.Contains(got, "predicted 50 rows") {
		t.Fatalf("predict output: %s", got)
	}

	// An explicit LABEL clause still opts in.
	out.Reset()
	mustExec(t, s, `SELECT * FROM scored TO PREDICT LABEL score USING m;`)
	if !strings.Contains(out.String(), "accuracy") {
		t.Fatalf("explicit LABEL ignored: %s", out.String())
	}
}

// TestPredictZeroOneLabels checks the accuracy summary accepts the 0/1
// label convention (not just ±1).
func TestPredictZeroOneLabels(t *testing.T) {
	s, out := declSession(t)
	zo := engine.NewMemTable("zosrc", tasks.DenseExampleSchema)
	err := data.Forest(200, 5).Scan(func(tp engine.Tuple) error {
		y := 0.0
		if tp[2].Float > 0 {
			y = 1
		}
		return zo.Insert(engine.Tuple{tp[0], tp[1], engine.F64(y)})
	})
	if err != nil {
		t.Fatal(err)
	}
	copyInto(t, s, "papers01", zo)
	// Train on the ±1 version of the same data, predict on the 0/1 table.
	copyInto(t, s, "papers", data.Forest(200, 5))
	mustExec(t, s, `SELECT * FROM papers TO TRAIN svm WITH epochs=8, alpha=0.2 INTO m;`)
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers01 TO PREDICT USING m;`)
	m := regexp.MustCompile(`accuracy ([0-9.]+)%`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("predict output: %s", out.String())
	}
	if acc, _ := strconv.ParseFloat(m[1], 64); acc < 75 {
		t.Fatalf("0/1-label accuracy %.1f%% too low: %s", acc, out.String())
	}
}

// TestSolverRejectsIgnoredKnobs checks non-IGD solvers refuse IGD-only
// knobs instead of silently ignoring them.
func TestSolverRejectsIgnoredKnobs(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "ratings", data.MovieLens(20, 15, 300, 3, 0.2, 9))
	err := s.Exec(`SELECT * FROM ratings TO TRAIN lmf WITH rank=3, solver=als, order=clustered INTO m;`)
	if err == nil || !strings.Contains(err.Error(), "ignores order") {
		t.Fatalf("als+order: %v", err)
	}
	err = s.Exec(`SELECT * FROM ratings TO TRAIN lmf WITH rank=3, solver=als, step=diminishing INTO m;`)
	if err == nil || !strings.Contains(err.Error(), "ignores step") {
		t.Fatalf("als+step: %v", err)
	}
}

// TestKnobRejectionAndStaleMeta covers the remaining silent-ignore holes:
// sampling trainers reject ordering/tolerance knobs, PREDICT rejects
// training knobs, and overwriting a model table via PREDICT INTO removes
// its metadata rather than leaving it stale.
func TestKnobRejectionAndStaleMeta(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(100, 5))
	mustExec(t, s, `SELECT * FROM papers TO TRAIN lr WITH epochs=5 INTO m;`)

	err := s.Exec(`SELECT * FROM papers TO TRAIN lr WITH mrs=32, order=clustered INTO x;`)
	if err == nil || !strings.Contains(err.Error(), "ignores order") {
		t.Fatalf("mrs+order: %v", err)
	}
	err = s.Exec(`SELECT * FROM papers TO TRAIN lr WITH reservoir=32, tol=0.1 INTO x;`)
	if err == nil || !strings.Contains(err.Error(), "ignores tol") {
		t.Fatalf("reservoir+tol: %v", err)
	}
	err = s.Exec(`SELECT * FROM papers TO PREDICT WITH epochs=5 USING m;`)
	if err == nil || !strings.Contains(err.Error(), "only threshold") {
		t.Fatalf("predict+epochs: %v", err)
	}

	// Clobber a model with prediction output: its metadata must go too.
	mustExec(t, s, `SELECT * FROM papers TO TRAIN lr WITH epochs=5 INTO victim;`)
	mustExec(t, s, `SELECT * FROM papers TO PREDICT INTO victim USING m;`)
	err = s.Exec(`SELECT * FROM papers TO PREDICT USING victim;`)
	if err == nil || !strings.Contains(err.Error(), "no metadata") {
		t.Fatalf("stale meta: %v", err)
	}
}

// TestFileCatalogRetrainReplacesModel is the file-backed stale-heap
// regression: retraining a different task INTO the same model name must
// fully replace both the coefficient table and the metadata on disk.
func TestFileCatalogRetrainReplacesModel(t *testing.T) {
	dir := t.TempDir()
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	var out bytes.Buffer
	s := &Session{Cat: cat, Out: &out}

	papers, err := cat.Create("papers", tasks.DenseExampleSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.Forest(150, 5).CopyTo(papers); err != nil {
		t.Fatal(err)
	}
	ratings, err := cat.Create("ratings", tasks.RatingSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.MovieLens(20, 15, 300, 3, 0.2, 9).CopyTo(ratings); err != nil {
		t.Fatal(err)
	}

	mustExec(t, s, `SELECT * FROM ratings TO TRAIN lmf WITH rank=3, epochs=3 INTO m;`)
	mustExec(t, s, `SELECT * FROM papers TO TRAIN lr WITH epochs=5 INTO m;`)
	out.Reset()
	// Stale lmf rows in m__meta would make this fail with unknown params.
	mustExec(t, s, `SELECT * FROM papers TO PREDICT USING m;`)
	if !strings.Contains(out.String(), "accuracy") {
		t.Fatalf("retrained predict: %s", out.String())
	}

	// Re-running PREDICT INTO must replace, not append.
	mustExec(t, s, `SELECT * FROM papers TO PREDICT INTO scores USING m;`)
	mustExec(t, s, `SELECT * FROM papers TO PREDICT INTO scores USING m;`)
	scores, err := cat.Get("scores")
	if err != nil {
		t.Fatal(err)
	}
	if scores.NumRows() != 150 {
		t.Fatalf("scores rows after rerun: %d (stale heap rows survived)", scores.NumRows())
	}
}

// TestTrainRejectsThreshold keeps TRAIN from silently dropping the
// scoring-time threshold knob.
func TestTrainRejectsThreshold(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(50, 5))
	err := s.Exec(`SELECT * FROM papers TO TRAIN lr WITH threshold=0.7 INTO m;`)
	if err == nil || !strings.Contains(err.Error(), "threshold applies to PREDICT") {
		t.Fatalf("train+threshold: %v", err)
	}
}
