package sqlish

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bismarck/internal/data"
	"bismarck/internal/engine"
)

// corruptHeapPage flips one bit inside the given page of a heap file.
func corruptHeapPage(t *testing.T, dir, table string, pageID int) {
	t.Helper()
	path := filepath.Join(dir, table+".heap")
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(pageID)*engine.PageSize + 100
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// fileSession builds a file-backed session over a saved Forest table, then
// reopens the catalog so every statement runs against disk state.
func fileSession(t *testing.T, rows int) (*Session, *bytes.Buffer, string) {
	t.Helper()
	dir := t.TempDir()
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := data.Forest(rows, 5)
	dst, err := cat.Create("papers", src.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	cat2, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat2.Close() })
	var out bytes.Buffer
	return &Session{Cat: cat2, Out: &out}, &out, dir
}

// TestCheckTableShowScrubAndDegradedStatements drives the whole degraded-
// read surface: CHECK TABLE finds rot that landed after open, SHOW SCRUB
// reports it, strict source scans fail with the typed corruption error,
// and WITH degraded=true completes while reporting what was skipped.
func TestCheckTableShowScrubAndDegradedStatements(t *testing.T) {
	s, out, dir := fileSession(t, 3000)

	// Clean table: CHECK TABLE says so.
	mustExec(t, s, `CHECK TABLE papers;`)
	if !strings.Contains(out.String(), `table "papers"`) || !strings.Contains(out.String(), "all checksums ok") {
		t.Fatalf("clean CHECK TABLE output: %s", out.String())
	}

	// Rot lands while the catalog is open — the scrub must look past any
	// cached copy and quarantine the page.
	corruptHeapPage(t, dir, "papers", 1)
	out.Reset()
	mustExec(t, s, `CHECK TABLE papers;`)
	if !strings.Contains(out.String(), "1 newly quarantined") || !strings.Contains(out.String(), "page 1: checksum mismatch") {
		t.Fatalf("CHECK TABLE after rot: %s", out.String())
	}

	out.Reset()
	mustExec(t, s, `SHOW SCRUB;`)
	if !strings.Contains(out.String(), "papers") || !strings.Contains(out.String(), "1 quarantined: 1") {
		t.Fatalf("SHOW SCRUB output: %s", out.String())
	}

	// Strict scans refuse the table and name both remedies.
	err := s.Exec(`SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=1 INTO m;`)
	var ce *engine.CorruptPageError
	if !errors.As(err, &ce) || ce.Table != "papers" || ce.Page != 1 {
		t.Fatalf("strict TRAIN = %v, want CorruptPageError on papers page 1", err)
	}
	if !strings.Contains(err.Error(), "CHECK TABLE") || !strings.Contains(err.Error(), "degraded=true") {
		t.Fatalf("error does not name the remedies: %v", err)
	}

	// Degraded opt-in: training completes and the skip is reported.
	out.Reset()
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=1, degraded=true INTO m;`)
	if !strings.Contains(out.String(), "degraded scan: skipped 1 corrupt pages") {
		t.Fatalf("degraded TRAIN output: %s", out.String())
	}
	if !strings.Contains(out.String(), "LR trained") {
		t.Fatalf("degraded TRAIN did not train: %s", out.String())
	}

	// PREDICT and EVALUATE honor the same knob and report the same skip.
	for _, stmt := range []string{
		`SELECT * FROM papers TO PREDICT WITH degraded=true USING m;`,
		`SELECT * FROM papers TO EVALUATE WITH degraded=true USING m;`,
	} {
		out.Reset()
		mustExec(t, s, stmt)
		if !strings.Contains(out.String(), "degraded scan: skipped 1 corrupt pages") {
			t.Fatalf("%s\n=> no skip report: %s", stmt, out.String())
		}
	}
	// ...while the strict forms still refuse.
	if err := s.Exec(`SELECT * FROM papers TO PREDICT USING m;`); !errors.As(err, &ce) {
		t.Fatalf("strict PREDICT = %v, want CorruptPageError", err)
	}
}

// TestDegradedKnobAllowListed: degraded joins threshold as the only knobs
// a PREDICT/EVALUATE statement may set — everything else is still the
// trainer's business and is rejected with a message naming both.
func TestDegradedKnobAllowListed(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(200, 5))
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=1 INTO m;`)

	err := s.Exec(`SELECT * FROM papers TO PREDICT WITH alpha=0.5 USING m;`)
	if err == nil || !strings.Contains(err.Error(), "only threshold and degraded") {
		t.Fatalf("PREDICT WITH alpha = %v, want allow-list rejection", err)
	}
	// The allowed pair passes together (degraded is a no-op on a clean
	// in-memory table — the knob is legal, not required to skip anything).
	mustExec(t, s, `SELECT * FROM papers TO PREDICT WITH threshold=0.25, degraded=true USING m;`)
	// TRAIN still rejects degraded=... nothing: TRAIN accepts it as a knob.
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1, degraded=false INTO m2;`)
}

// TestModelNeverServedDegraded: rot inside a model's coefficient pages
// condemns the model pair at recovery — a later PREDICT sees an unknown
// model, never silently-wrong coefficients, and the source table is
// untouched.
func TestModelNeverServedDegraded(t *testing.T) {
	dir := t.TempDir()
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := data.Forest(300, 5)
	dst, err := cat.Create("papers", src.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	s := &Session{Cat: cat, Out: &out}
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=4, seed=1 INTO m;`)
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	corruptHeapPage(t, dir, "m", 0)

	cat2, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	if reason := cat2.Recovery.Skipped["m"]; !strings.Contains(reason, "never served degraded") {
		t.Fatalf("Skipped[m] = %q", reason)
	}
	s2 := &Session{Cat: cat2, Out: &out}
	err = s2.Exec(`SELECT * FROM papers TO PREDICT USING m;`)
	var ume *UnknownModelError
	if !errors.As(err, &ume) {
		t.Fatalf("PREDICT over condemned model = %v, want UnknownModelError", err)
	}
	// Degraded opt-in does not resurrect a condemned model either.
	err = s2.Exec(`SELECT * FROM papers TO PREDICT WITH degraded=true USING m;`)
	if !errors.As(err, &ume) {
		t.Fatalf("degraded PREDICT over condemned model = %v, want UnknownModelError", err)
	}
	// The clean source table is still fully readable.
	out.Reset()
	mustExec(t, s2, `CHECK TABLE papers;`)
	if !strings.Contains(out.String(), "all checksums ok") {
		t.Fatalf("papers after model condemnation: %s", out.String())
	}
}
