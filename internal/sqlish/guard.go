package sqlish

import (
	"fmt"
	"strings"
)

// Guard serializes cross-session access to shared catalog tables. Names
// are lock keys: a model name guards both the coefficient table and its
// __meta side table, and any INTO destination guards the replace-and-fill
// window of that table. The zero case (a nil Session.Guard) means the
// session owns its catalog exclusively and no locking happens.
//
// Implementations must be deadlock-free under the session layer's
// discipline: a session never holds two name locks at once (see the
// locking-protocol section of DESIGN.md).
type Guard interface {
	// Lock takes the name's exclusive lock and returns its release.
	Lock(name string) (unlock func())
	// RLock takes the name's shared lock and returns its release.
	RLock(name string) (unlock func())
}

// lockKey normalizes a table name to its lock key: any chain of "__meta"
// suffixes collapses to the base name, so a model's coefficient table and
// its metadata side table always contend on one lock no matter which name
// a statement arrived with (the parser additionally rejects user-supplied
// __meta names, but a FROM scan of a side table must still exclude the
// model's writer).
func lockKey(name string) string {
	for {
		base, ok := strings.CutSuffix(name, metaSuffix)
		if !ok {
			return name
		}
		name = base
	}
}

// lockName takes the exclusive lock on a shared table name (no-op without
// a Guard).
func (s *Session) lockName(name string) func() {
	if s.Guard == nil {
		return func() {}
	}
	return s.Guard.Lock(lockKey(name))
}

// rlockName takes the shared lock on a shared table name (no-op without a
// Guard).
func (s *Session) rlockName(name string) func() {
	if s.Guard == nil {
		return func() {}
	}
	return s.Guard.RLock(lockKey(name))
}

// UnknownModelError reports a PREDICT / EVALUATE against a model name that
// was never trained (neither a coefficient table nor metadata exists).
// Front ends can detect it with errors.As to render the hint cleanly.
type UnknownModelError struct{ Model string }

// Error implements error.
func (e *UnknownModelError) Error() string {
	return fmt.Sprintf("sqlish: unknown model %q — train one with TO TRAIN ... INTO %s, or SHOW MODELS to list saved models",
		e.Model, e.Model)
}
