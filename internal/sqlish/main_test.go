package sqlish

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bismarck/internal/engine"
)

// testRoot is the scratch root TestMain owns; file-catalog tests get their
// directories from testCatalogDir so the shadow-leak sweep sees them.
var testRoot string

// TestMain fails the package if any test leaked an in-flight
// *__shadow*.heap file: a save either commits (shadows renamed away),
// fails (shadows dropped), or simulates a crash (shadows swept by the
// recovery reopen the test performs) — anything else is a protocol bug.
func TestMain(m *testing.M) {
	var err error
	testRoot, err = os.MkdirTemp("", "bismarck-sqlish-test-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sqlish tests: %v\n", err)
		os.Exit(1)
	}
	code := m.Run()
	if leaks := findShadowLeaks(testRoot); len(leaks) > 0 {
		fmt.Fprintf(os.Stderr, "sqlish tests leaked in-flight shadow heaps:\n")
		for _, l := range leaks {
			fmt.Fprintf(os.Stderr, "  %s\n", l)
		}
		if code == 0 {
			code = 1
		}
	}
	os.RemoveAll(testRoot)
	os.Exit(code)
}

func findShadowLeaks(root string) []string {
	var leaks []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.Contains(d.Name(), engine.ShadowSuffix) && strings.HasSuffix(d.Name(), ".heap") {
			leaks = append(leaks, path)
		}
		return nil
	})
	return leaks
}

// testCatalogDir returns a fresh catalog directory under the swept root,
// with a per-test leak check so failures point at the leaking test.
func testCatalogDir(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp(testRoot, strings.ReplaceAll(t.Name(), "/", "_")+"-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if leaks := findShadowLeaks(dir); len(leaks) > 0 {
			t.Errorf("test leaked in-flight shadow heaps: %v", leaks)
		}
		os.RemoveAll(dir)
	})
	return dir
}
