package sqlish

import (
	"strings"
	"sync"
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/spec"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// TestTrainWithShardsEndToEnd drives the full statement path of the
// sharded mode: WITH shards=K plumbs from the parser through the knobs to
// the ShardedTrainer, the trained model persists like any other, and
// PREDICT scores with it.
func TestTrainWithShardsEndToEnd(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(600, 5))

	mustExec(t, s, `SELECT vec, label FROM papers
		TO TRAIN lr
		WITH alpha=0.2, epochs=10, shards=4, seed=3
		COLUMN vec LABEL label
		INTO m;`)
	if !strings.Contains(out.String(), "IGD/Sharded×4(roundrobin)") {
		t.Fatalf("train output does not report the sharded dispatch: %s", out.String())
	}
	if _, err := s.Cat.Get("m"); err != nil {
		t.Fatal("model table not persisted")
	}
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO PREDICT USING m;`)
	if !strings.Contains(out.String(), "predicted 600 rows") {
		t.Fatalf("predict output: %s", out.String())
	}

	// Hash partitioning via shard_by, reported in the dispatch string.
	out.Reset()
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN svm
		WITH epochs=5, shards=2, shard_by=hash INTO mh;`)
	if !strings.Contains(out.String(), "IGD/Sharded×2(hash)") {
		t.Fatalf("hash dispatch missing: %s", out.String())
	}
}

// TestShowShardsDiagnostics checks the SHOW SHARDS output: both strategies
// reported, round-robin perfectly balanced, totals matching the table.
func TestShowShardsDiagnostics(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(100, 5))

	mustExec(t, s, "SHOW SHARDS papers 4;")
	got := out.String()
	if !strings.Contains(got, `table "papers": 100 rows over 4 shards`) {
		t.Fatalf("header missing: %s", got)
	}
	if !strings.Contains(got, "roundrobin 25 25 25 25 (min 25, max 25)") {
		t.Fatalf("round-robin distribution missing: %s", got)
	}
	if !strings.Contains(got, "hash") {
		t.Fatalf("hash distribution missing: %s", got)
	}

	if err := s.Exec("SHOW SHARDS nosuch 4;"); err == nil {
		t.Fatal("SHOW SHARDS on a missing table must error")
	}
}

// TestShardsKnobRejectedAtStatementLevel: the knob rules surface through
// Session.Exec, not just SplitKnobs in isolation.
func TestShardsKnobRejectedAtStatementLevel(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(50, 5))
	for stmt, want := range map[string]string{
		"SELECT vec, label FROM papers TO TRAIN lr WITH shards=0 INTO m;":               "positive integer",
		"SELECT vec, label FROM papers TO TRAIN lr WITH shards=2, parallel=aig INTO m;": "mutually exclusive",
		"SELECT vec, label FROM papers TO TRAIN lr WITH shards=2, solver=batch INTO m;": "does not combine",
		"SELECT vec, label FROM papers TO TRAIN lr WITH shard_by=roundrobin INTO m;":    "requires shards",
		"SELECT vec, label FROM papers TO TRAIN lr WITH shards=2, reservoir=10 INTO m;": "mutually exclusive",
	} {
		err := s.Exec(stmt)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%s\n=> %v (want %q)", stmt, err, want)
		}
	}
}

// panickyShardTask blows up on its Nth gradient step.
type panickyShardTask struct {
	*tasks.LR
	mu    sync.Mutex
	calls int
}

func (p *panickyShardTask) Step(m core.Model, tp engine.Tuple, alpha float64) {
	p.mu.Lock()
	p.calls++
	c := p.calls
	p.mu.Unlock()
	if c >= 40 {
		panic("injected statement-level shard panic")
	}
	p.LR.Step(m, tp, alpha)
}

var registerPanicTask sync.Once

// TestShardWorkerPanicFailsStatementNotProcess is the statement-level half
// of the panic-containment satellite: a task whose gradient step panics
// inside a shard worker fails the TRAIN statement with an error naming the
// shard — the session, the catalog, and the process all survive, and no
// model table is created.
func TestShardWorkerPanicFailsStatementNotProcess(t *testing.T) {
	registerPanicTask.Do(func() {
		spec.Register(spec.TaskSpec{
			Name:    "paniclr",
			Summary: "test-only: LR whose Step panics mid-epoch",
			Schema:  tasks.DenseExampleSchema,
			Params:  []spec.ParamSpec{},
			Build: func(in spec.BuildInput) (core.Task, error) {
				dim, err := spec.InferVecDim(in.View, 1)
				if err != nil {
					return nil, err
				}
				return &panickyShardTask{LR: tasks.NewLR(dim)}, nil
			},
			Snapshot: func(core.Task) map[string]string { return nil },
			Predict: func(tsk core.Task, w vector.Dense, tp engine.Tuple) float64 {
				return 0
			},
		})
	})
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(200, 5))

	err := s.Exec("SELECT vec, label FROM papers TO TRAIN paniclr WITH shards=4, epochs=3 INTO pm;")
	if err == nil {
		t.Fatal("panicking shard worker must fail the statement")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("statement error does not surface the panic: %v", err)
	}
	if _, getErr := s.Cat.Get("pm"); getErr == nil {
		t.Fatal("failed TRAIN must not persist a model")
	}
	// The session keeps working afterwards.
	mustExec(t, s, "SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, shards=2 INTO ok;")
}
