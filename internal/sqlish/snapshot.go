package sqlish

import (
	"fmt"
	"math"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/spec"
	"bismarck/internal/vector"
)

// ModelSnapshot is one persisted model decoded for serving: the dense
// coefficient vector, the task rebuilt from the metadata side table, and a
// precomputed inline-tuple layout. A snapshot is immutable after
// LoadSnapshot returns — concurrent scorers share it freely, each bringing
// its own PointScratch — which is what lets the serve package publish
// snapshots through an atomic pointer and never lock on the hot path.
type ModelSnapshot struct {
	Model string
	Spec  *spec.TaskSpec
	Task  core.Task
	W     vector.Dense
	// Threshold is the task's default decision threshold (point scoring
	// returns raw scores; the threshold is exported for front ends that
	// want to render a class).
	Threshold float64

	layout pointLayout
}

// pointLayout maps the flat value list of PREDICT (v1, v2, ...) onto the
// task's canonical tuple layout, precomputed once per snapshot so scoring
// does no schema walking. Two shapes exist: vector layout (all values form
// one dense feature vector — the classification family) and scalar layout
// (each value fills one scalar column positionally — lmf's (row, col)).
type pointLayout struct {
	ok     bool
	reason string // why point scoring is unsupported when !ok
	arity  int    // required value count; 0 = any n >= 1 (vector layout)
	vecCol int    // tuple index of the dense feature vector; -1 = scalar layout
	// scalarCols[i] is the tuple index value i fills (scalar layout).
	scalarCols []int
	// leadID: tuple index 0 is a synthesized id/t int64 column.
	leadID bool
	n      int // tuple arity of the canonical schema
}

// buildPointLayout derives the inline-tuple layout from a task schema.
// Rules: a leading (id|t) int64 column is synthesized as 0; the trailing
// column (label / rating / target) is zero-filled; the remaining columns
// are the value targets — one vector column takes all values, otherwise
// each scalar column takes one value positionally.
func buildPointLayout(ts *spec.TaskSpec) pointLayout {
	if ts.Predict == nil {
		return pointLayout{reason: fmt.Sprintf("task %s does not support PREDICT (use TO EVALUATE)", ts.Name)}
	}
	schema := ts.Schema
	n := len(schema)
	if n < 2 {
		return pointLayout{reason: fmt.Sprintf("task %s schema is too narrow for point PREDICT", ts.Name)}
	}
	lo := pointLayout{vecCol: -1, n: n}
	first := 0
	if schema[0].Type == engine.TInt64 && (schema[0].Name == "id" || schema[0].Name == "t") {
		lo.leadID = true
		first = 1
	}
	// Targets are columns [first, n-1); the last column is the label slot.
	for i := first; i < n-1; i++ {
		switch schema[i].Type {
		case engine.TDenseVec, engine.TSparseVec:
			if lo.vecCol >= 0 || len(lo.scalarCols) > 0 {
				return pointLayout{reason: fmt.Sprintf("task %s mixes vector and scalar feature columns; point PREDICT is not supported", ts.Name)}
			}
			lo.vecCol = i
		case engine.TInt64, engine.TFloat64:
			if lo.vecCol >= 0 {
				return pointLayout{reason: fmt.Sprintf("task %s mixes vector and scalar feature columns; point PREDICT is not supported", ts.Name)}
			}
			lo.scalarCols = append(lo.scalarCols, i)
		default:
			return pointLayout{reason: fmt.Sprintf("task %s column %q is not point-addressable", ts.Name, schema[i].Name)}
		}
	}
	if lo.vecCol < 0 && len(lo.scalarCols) == 0 {
		return pointLayout{reason: fmt.Sprintf("task %s has no feature columns for point PREDICT", ts.Name)}
	}
	if lo.vecCol < 0 {
		lo.arity = len(lo.scalarCols)
	}
	lo.ok = true
	return lo
}

// SupportsPoint reports whether the snapshot's task can score inline
// tuples (and why not when it cannot).
func (snap *ModelSnapshot) SupportsPoint() (bool, string) {
	return snap.layout.ok, snap.layout.reason
}

// LoadSnapshot decodes the persisted model into a serving snapshot. The
// model name's shared lock spans the metadata and coefficient reads (same
// invariant as restore), and the returned generation is the catalog
// generation observed inside that lock window — a swap cannot commit while
// the lock is held, so snapshot and generation always belong together. A
// never-trained (or dropped) model surfaces as *UnknownModelError.
//
// The task is rebuilt from metadata alone (no data view): a committed
// model's metadata carries its fully-resolved constructor parameters, so
// the Build hook never reaches dimension inference. This is what makes a
// cache fill independent of any table scan — loadModel becomes the fill.
func (s *Session) LoadSnapshot(model string) (*ModelSnapshot, uint64, error) {
	unlock := s.rlockName(model)
	gen := s.Cat.Generation(model)
	taskName, kv, err := s.loadMeta(model)
	var w vector.Dense
	if err == nil {
		var dim int64
		fmt.Sscan(kv["__dim"], &dim)
		w, err = s.loadModel(model, dim)
	}
	unlock()
	if err != nil {
		return nil, 0, err
	}
	ts, err := spec.Lookup(taskName)
	if err != nil {
		return nil, 0, err
	}
	delete(kv, "__dim") // reserved: model dimension, not a task parameter
	params, err := spec.RebindStrings(ts.Params, kv)
	if err != nil {
		return nil, 0, err
	}
	task, err := ts.Build(spec.BuildInput{Params: params})
	if err != nil {
		return nil, 0, err
	}
	if task.Dim() > len(w) {
		padded := vector.NewDense(task.Dim())
		copy(padded, w)
		w = padded
	}
	threshold := ts.DefaultThreshold
	snap := &ModelSnapshot{Model: model, Spec: ts, Task: task, W: w,
		Threshold: threshold, layout: buildPointLayout(ts)}
	return snap, gen, nil
}

// PointScratch is one scorer's reusable working set: the canonical tuple
// and the dense feature vector it points into. Score rebuilds both in
// place, so steady-state scoring allocates nothing once the scratch has
// grown to the largest tuple seen. A scratch is single-goroutine state;
// snapshots are the shared part.
type PointScratch struct {
	tuple engine.Tuple
	vec   vector.Dense
}

// Score scores one inline value tuple against the snapshot, returning the
// task's raw score (probability for lr, margin for svm/lsq, predicted
// rating for lmf). It takes no locks and, in steady state, performs zero
// heap allocations — the serving plane's hot path.
//
//bismarck:noalloc
func (sc *PointScratch) Score(snap *ModelSnapshot, vals []float64) (float64, error) {
	lo := &snap.layout
	if !lo.ok {
		return 0, fmt.Errorf("sqlish: %s", lo.reason)
	}
	if lo.arity > 0 && len(vals) != lo.arity {
		return 0, fmt.Errorf("sqlish: PREDICT tuple has %d values, task %s wants %d",
			len(vals), snap.Spec.Name, lo.arity)
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("sqlish: PREDICT needs at least one value")
	}
	if cap(sc.tuple) < lo.n {
		sc.tuple = make(engine.Tuple, lo.n)
	}
	tp := sc.tuple[:lo.n]
	for i := range tp {
		tp[i] = engine.Value{}
	}
	if lo.leadID {
		tp[0] = engine.I64(0)
	}
	tp[lo.n-1] = engine.F64(0) // label slot: unused by Predict hooks
	if lo.vecCol >= 0 {
		if cap(sc.vec) < len(vals) {
			sc.vec = vector.NewDense(len(vals))
		}
		v := sc.vec[:len(vals)]
		copy(v, vals)
		tp[lo.vecCol] = engine.DenseV(v)
	} else {
		for i, col := range lo.scalarCols {
			if snap.Spec.Schema[col].Type == engine.TInt64 {
				if vals[i] != math.Trunc(vals[i]) {
					return 0, fmt.Errorf("sqlish: PREDICT value %d must be an integer for %s column %q",
						i+1, snap.Spec.Name, snap.Spec.Schema[col].Name)
				}
				tp[col] = engine.I64(int64(vals[i]))
			} else {
				tp[col] = engine.F64(vals[i])
			}
		}
	}
	return snap.Spec.Predict(snap.Task, snap.W, tp), nil
}

// pointPredict runs the inline PREDICT forms locally (no cache — the
// serving plane in internal/serve is the cached path; this one reloads the
// model per statement, which is still correct and still lock-disciplined).
// Output: one raw score per value tuple, in statement order.
func (s *Session) pointPredict(st *spec.Statement) error {
	if err := spec.ValidatePoints(st.Points); err != nil {
		return err
	}
	snap, _, err := s.LoadSnapshot(st.Model)
	if err != nil {
		return err
	}
	var sc PointScratch
	for _, vals := range st.Points {
		score, err := sc.Score(snap, vals)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.Out, "%.6g\n", score)
	}
	return nil
}
