package sqlish

import (
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"bismarck/internal/data"
)

// scoreLines parses the per-tuple "%.6g" output of a point PREDICT.
func scoreLines(t *testing.T, out string) []float64 {
	t.Helper()
	var scores []float64
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		v, err := strconv.ParseFloat(strings.TrimSpace(line), 64)
		if err != nil {
			t.Fatalf("non-numeric point-PREDICT output line %q in:\n%s", line, out)
		}
		scores = append(scores, v)
	}
	return scores
}

// TestPointPredictVectorLayout trains LR (vector layout: all inline values
// form the feature vector) and scores through both inline forms.
func TestPointPredictVectorLayout(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "papers", data.Forest(400, 7))
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr
		WITH alpha=0.2, epochs=8, seed=1 COLUMN vec LABEL label INTO m;`)

	out.Reset()
	mustExec(t, s, `PREDICT (0.25, 0.5, 0.75) USING m;`)
	single := scoreLines(t, out.String())
	if len(single) != 1 {
		t.Fatalf("single form printed %d scores, want 1:\n%s", len(single), out.String())
	}
	if single[0] <= 0 || single[0] >= 1 {
		t.Fatalf("LR point score %v outside (0,1)", single[0])
	}

	out.Reset()
	mustExec(t, s, `PREDICT VALUES (0.25, 0.5, 0.75), (0.9, 0.1, 0.2) USING m;`)
	batch := scoreLines(t, out.String())
	if len(batch) != 2 {
		t.Fatalf("batched form printed %d scores, want 2:\n%s", len(batch), out.String())
	}
	if batch[0] != single[0] {
		t.Fatalf("same tuple scored differently: %v vs %v", batch[0], single[0])
	}
}

// TestPointPredictScalarLayout trains LMF (scalar layout: positional
// (row, col) values) and exercises the integral-value and arity checks.
func TestPointPredictScalarLayout(t *testing.T) {
	s, out := declSession(t)
	copyInto(t, s, "ratings", data.MovieLens(20, 15, 400, 3, 0.05, 2))
	mustExec(t, s, `SELECT * FROM ratings TO TRAIN lmf
		WITH rows=20, cols=15, rank=3, epochs=12, alpha=0.05, seed=2 INTO mf;`)

	out.Reset()
	mustExec(t, s, `PREDICT (3, 4) USING mf;`)
	scores := scoreLines(t, out.String())
	if len(scores) != 1 || math.IsNaN(scores[0]) {
		t.Fatalf("lmf point score: %v", scores)
	}

	// A cell outside the trained matrix is NaN, not an error.
	out.Reset()
	mustExec(t, s, `PREDICT (1000, 4) USING mf;`)
	if !strings.Contains(out.String(), "NaN") {
		t.Fatalf("out-of-matrix cell should print NaN, got %q", out.String())
	}

	for stmt, wantSub := range map[string]string{
		`PREDICT (3.5, 4) USING mf;`:   "integer",
		`PREDICT (1, 2, 3) USING mf;`:  "wants 2",
		`PREDICT VALUES (7) USING mf;`: "wants 2",
	} {
		if err := s.Exec(stmt); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s => %v, want substring %q", stmt, err, wantSub)
		}
	}
}

// TestPointPredictUnknownModel pins the typed error contract: scoring a
// model that was never trained (or has been dropped) surfaces as
// *UnknownModelError with the SHOW MODELS hint.
func TestPointPredictUnknownModel(t *testing.T) {
	s, _ := declSession(t)
	err := s.Exec(`PREDICT (1, 2) USING nosuch;`)
	var unk *UnknownModelError
	if !errors.As(err, &unk) {
		t.Fatalf("want *UnknownModelError, got %T: %v", err, err)
	}
	if unk.Model != "nosuch" || !strings.Contains(err.Error(), "SHOW MODELS") {
		t.Fatalf("error lost its hint: %v", err)
	}

	// Dropped after training: same typed error, not a stale read.
	copyInto(t, s, "papers", data.Forest(200, 3))
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2 INTO m;`)
	if err := s.Cat.Drop("m"); err != nil {
		t.Fatal(err)
	}
	if err := s.Cat.Drop(metaTable("m")); err != nil {
		t.Fatal(err)
	}
	err = s.Exec(`PREDICT (1, 2, 3) USING m;`)
	if !errors.As(err, &unk) {
		t.Fatalf("dropped model: want *UnknownModelError, got %T: %v", err, err)
	}
}

// TestLoadSnapshotGeneration checks the snapshot/generation pairing: the
// generation is read inside the model's lock window, advances across a
// retrain (whose Swap retargets the name), and never moves for an
// untouched model.
func TestLoadSnapshotGeneration(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(200, 5))
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lsq WITH epochs=3 INTO m;`)

	snap1, gen1, err := s.LoadSnapshot("m")
	if err != nil {
		t.Fatal(err)
	}
	if gen1 == 0 {
		t.Fatal("trained model has generation 0")
	}
	if ok, reason := snap1.SupportsPoint(); !ok {
		t.Fatalf("lsq snapshot should score points: %s", reason)
	}
	if snap1.Model != "m" || snap1.Spec.Name != "lsq" || len(snap1.W) == 0 {
		t.Fatalf("snapshot incomplete: %+v", snap1)
	}

	_, again, err := s.LoadSnapshot("m")
	if err != nil {
		t.Fatal(err)
	}
	if again != gen1 {
		t.Fatalf("generation moved without a mutation: %d -> %d", gen1, again)
	}

	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lsq WITH epochs=3 INTO m;`)
	snap2, gen2, err := s.LoadSnapshot("m")
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen1 {
		t.Fatalf("retrain did not advance generation: %d -> %d", gen1, gen2)
	}
	if snap2.Task.Dim() != snap1.Task.Dim() {
		t.Fatalf("rebuilt task changed dimension: %d vs %d", snap1.Task.Dim(), snap2.Task.Dim())
	}
}

// TestPointScratchZeroAlloc pins the hot-path contract locally: once the
// scratch is warm, scoring allocates nothing. (The serve package re-proves
// this through its cache; this is the scoring core alone.)
func TestPointScratchZeroAlloc(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "papers", data.Forest(200, 5))
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN svm WITH epochs=3 INTO m;`)
	snap, _, err := s.LoadSnapshot("m")
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{0.1, 0.2, 0.3}
	var sc PointScratch
	if _, err := sc.Score(snap, vals); err != nil { // warm the scratch
		t.Fatal(err)
	}
	sink := 0.0
	allocs := testing.AllocsPerRun(100, func() {
		v, err := sc.Score(snap, vals)
		if err != nil {
			t.Fatal(err)
		}
		sink += v
	})
	if allocs != 0 {
		t.Fatalf("PointScratch.Score allocates %v/op, want 0", allocs)
	}
	_ = sink
}

// TestPointLayoutUnsupportedTask: a task without a Predict hook fails with
// a direct diagnosis, not a panic or a nil score.
func TestPointLayoutUnsupportedTask(t *testing.T) {
	s, _ := declSession(t)
	copyInto(t, s, "edges", data.MovieLens(10, 10, 120, 2, 0.1, 4))
	mustExec(t, s, `SELECT * FROM edges TO TRAIN maxcut WITH nodes=10, epochs=2 INTO cut;`)
	err := s.Exec(`PREDICT (1, 2) USING cut;`)
	if err == nil || !strings.Contains(err.Error(), "does not support PREDICT") {
		t.Fatalf("maxcut point predict => %v", err)
	}
}

// TestShowTasksPointTag: SHOW TASKS marks point-capable tasks so REPL users
// can see which models the inline form will accept.
func TestShowTasksPointTag(t *testing.T) {
	s, out := declSession(t)
	mustExec(t, s, `SHOW TASKS;`)
	for _, line := range strings.Split(out.String(), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 || strings.HasPrefix(line, " ") {
			continue
		}
		tagged := strings.Contains(line, "[point]")
		switch f[0] {
		case "lr", "svm", "lsq", "lasso", "softmax", "lmf":
			if !tagged {
				t.Errorf("task %s should carry [point]: %q", f[0], line)
			}
		case "crf", "kalman", "portfolio", "maxcut":
			if tagged {
				t.Errorf("task %s must not carry [point]: %q", f[0], line)
			}
		}
	}
}
