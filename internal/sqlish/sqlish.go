// Package sqlish executes the declarative statement layer of §2.1 against
// Bismarck trainers over a file catalog. Statements are parsed by
// internal/spec into one AST — both the SQLFlow-style extended grammar
//
//	SELECT vec, label FROM papers
//	TO TRAIN svm WITH alpha=0.1, order=shuffle_once INTO myModel;
//
// and the legacy MADlib-style calls
//
//	SELECT SVMTrain('myModel', 'papers', 'vec', 'label');
//
// — and dispatched through the task registry: the session projects the
// data view, binds WITH parameters, builds the task, routes the uniform
// knobs onto the sequential / parallel / sampling trainers (or a baseline
// solver), and persists the model as a user table plus a metadata side
// table, exactly as the paper describes. This is deliberately NOT a SQL
// engine — the point is that the interface layer is thin and orthogonal to
// the unified architecture underneath.
package sqlish

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"

	"bismarck/internal/baselines"
	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/spec"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"

	// Side effect: the built-in tasks self-register with the statement
	// layer's registry.
	_ "bismarck/internal/tasks/register"
)

// Session executes statements against one catalog. A Session itself is
// not safe for concurrent use — each client gets its own — but sessions
// sharing a catalog are safe against each other when they share a Guard.
type Session struct {
	Cat *engine.Catalog
	Out io.Writer
	// Epochs and Alpha are session-level defaults used when a statement
	// sets neither; zero values fall back to 20 and the task's preference.
	Epochs int
	Alpha  float64
	// Guard, when non-nil, serializes access to shared catalog tables
	// against other sessions on the same catalog (the server's session
	// manager installs one; nil means the session owns the catalog).
	Guard Guard
	// PreSave, when non-nil, runs after training succeeds and immediately
	// before the model is persisted; an error discards the trained result
	// and leaves any existing model tables untouched. The server's job
	// layer uses it to honor CANCEL JOB at the save boundary.
	PreSave func(model string) error
}

// Exec parses and runs one statement.
func (s *Session) Exec(stmt string) error {
	st, err := spec.Parse(stmt)
	if err != nil {
		return err
	}
	return s.Run(st)
}

// Run executes a parsed statement. Name rules are re-checked here (not
// just in the parser) because spec.Statement is exported: a
// programmatically built statement must face the same rules where the
// tables are actually touched.
func (s *Session) Run(st *spec.Statement) error {
	if err := spec.ValidateNames(st); err != nil {
		return err
	}
	// Catch file-catalog case collisions before the work happens: creating
	// "Forest" beside "forest" would fail (shared heap file on
	// case-insensitive filesystems), but only at save time — after the
	// whole training run. Exact-name matches are fine (replacement). This
	// pre-check is best-effort: it holds no lock across the training, so a
	// name created concurrently still surfaces at save time through the
	// engine's own checks (Create for the shadow, Swap for the final name —
	// the backstops that actually guarantee no collision is ever created).
	if st.Into != "" {
		for _, n := range []string{st.Into, metaTable(st.Into)} {
			if ex := s.Cat.FindCaseConflict(n); ex != "" {
				return fmt.Errorf("sqlish: INTO %q collides case-insensitively with existing table %q", n, ex)
			}
		}
	}
	switch st.Kind {
	case spec.KindShowTables:
		for _, n := range s.Cat.Names() {
			fmt.Fprintln(s.Out, n)
		}
		return nil
	case spec.KindShowTasks:
		for _, ts := range spec.Tasks() {
			point := ""
			if ts.Predict != nil {
				point = " [point]"
			}
			fmt.Fprintf(s.Out, "%-10s %s%s\n", ts.Name, ts.Summary, point)
			if len(ts.Params) > 0 {
				fmt.Fprintf(s.Out, "           WITH %s\n", spec.DescribeParams(ts.Params))
			}
		}
		return nil
	case spec.KindShowModels:
		return s.showModels()
	case spec.KindShowShards:
		return s.showShards(st)
	case spec.KindShowScrub:
		return s.showScrub()
	case spec.KindCheckTable:
		return s.checkTable(st)
	case spec.KindShowJobs, spec.KindWaitJob, spec.KindCancelJob:
		return fmt.Errorf("sqlish: %v needs the job scheduler — connect to a bismarckd server", st.Kind)
	case spec.KindShowServing:
		return fmt.Errorf("sqlish: %v needs the serving plane — connect to a bismarckd server (or run the bismarck REPL with -serve-cache)", st.Kind)
	case spec.KindTrain:
		return s.train(st)
	case spec.KindPredict:
		return s.predict(st)
	case spec.KindEvaluate:
		return s.evaluate(st)
	case spec.KindPointPredict:
		return s.pointPredict(st)
	}
	return fmt.Errorf("sqlish: unsupported statement %v", st.Kind)
}

// prepare resolves the statement's task spec, knobs, params, and data view
// — the shared front half of TRAIN.
func (s *Session) prepare(st *spec.Statement) (*spec.TaskSpec, spec.Knobs, spec.Params, *spec.View, error) {
	ts, err := spec.Lookup(st.Task)
	if err != nil {
		return nil, spec.Knobs{}, nil, nil, err
	}
	knobs, rest, err := spec.SplitKnobs(st.With)
	if err != nil {
		return nil, spec.Knobs{}, nil, nil, err
	}
	params, err := spec.BindParams(ts.Params, rest)
	if err != nil {
		return nil, spec.Knobs{}, nil, nil, err
	}
	view, err := s.projectFrom(st, ts.Schema, spec.ViewOptions{Degraded: knobs.Degraded})
	if err != nil {
		return nil, spec.Knobs{}, nil, nil, err
	}
	// threshold is a scoring-time knob; rejecting it here keeps TRAIN from
	// silently dropping what the user meant for PREDICT/EVALUATE.
	if !math.IsNaN(knobs.Threshold) {
		return nil, spec.Knobs{}, nil, nil, fmt.Errorf(
			"sqlish: threshold applies to PREDICT/EVALUATE, not TRAIN")
	}
	// Resolve session-level defaults: statement > session > task.
	if knobs.Epochs == 0 {
		knobs.Epochs = s.Epochs
	}
	if knobs.Epochs == 0 {
		knobs.Epochs = 20
	}
	if knobs.Alpha == 0 {
		knobs.Alpha = s.Alpha
	}
	if knobs.Alpha == 0 {
		knobs.Alpha = ts.DefaultAlpha
	}
	if knobs.Alpha == 0 {
		knobs.Alpha = 0.1
	}
	return ts, knobs, params, view, nil
}

// projectFrom resolves the source table and materializes the statement's
// view of it under the source name's shared lock: projection is the only
// moment a statement scans a shared table, so the lock window is exactly
// the copy (training and scoring then run on the private view).
func (s *Session) projectFrom(st *spec.Statement, schema engine.Schema, opt spec.ViewOptions) (*spec.View, error) {
	defer s.rlockName(st.From)()
	src, err := s.Cat.Get(st.From)
	if err != nil {
		return nil, err
	}
	return spec.ProjectView(src, st, schema, opt)
}

// showModels lists every persisted model (a coefficient table paired with
// its __meta side table) and the task that trained it.
func (s *Session) showModels() error {
	for _, name := range s.Cat.Names() {
		base, ok := strings.CutSuffix(name, metaSuffix)
		if !ok {
			continue
		}
		unlock := s.rlockName(base)
		taskName, _, err := s.loadMeta(base)
		if err == nil {
			if _, err := s.Cat.Get(base); err != nil {
				err = fmt.Errorf("missing coefficient table")
			}
		}
		unlock()
		if err != nil {
			fmt.Fprintf(s.Out, "%-12s (broken: %v)\n", base, err)
			continue
		}
		fmt.Fprintf(s.Out, "%-12s task=%s\n", base, taskName)
	}
	return nil
}

// showShards reports how a table's rows would partition across k shards
// under each strategy — the skew diagnostic behind WITH shards=K. Both
// strategies assign by row index alone, so the distributions come from
// engine.ShardCounts without moving (or copying) any data; only the row
// count is read under the table's shared lock. The count bounds are
// re-checked here because spec.Statement is exported — a programmatically
// built statement must face the same spec.ValidateShardCount rules the
// parser and the WITH shards=K knob enforce (0 means "count omitted":
// default to the core count).
func (s *Session) showShards(st *spec.Statement) error {
	if st.ShardCount != 0 {
		if err := spec.ValidateShardCount(st.ShardCount); err != nil {
			return err
		}
	}
	// The shared lock covers only the resolve and the row-count read; the
	// report prints after release. s.Out can be a network connection, and
	// a stalled client write must not stall writers queued on the table's
	// exclusive lock (lockorder rule E; the window used to span the
	// printing below).
	unlock := s.rlockName(st.From)
	tbl, err := s.Cat.Get(st.From)
	if err != nil {
		unlock()
		return err
	}
	n := tbl.NumRows()
	unlock()
	k := int(st.ShardCount)
	if k <= 0 {
		k = runtime.NumCPU()
	}
	fmt.Fprintf(s.Out, "table %q: %d rows over %d shards\n", st.From, n, k)
	for _, strat := range []engine.ShardStrategy{engine.ShardRoundRobin, engine.ShardHash} {
		counts, err := engine.ShardCounts(n, k, strat)
		if err != nil {
			return err
		}
		minC, maxC := counts[0], counts[0]
		for _, c := range counts {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		fmt.Fprintf(s.Out, "%-10s %s (min %d, max %d)\n", strat, renderCounts(counts), minC, maxC)
	}
	return nil
}

// renderCounts formats per-shard row counts, eliding past 16 shards so a
// huge K cannot flood the output with one unreadable line.
func renderCounts(counts []int) string {
	const show = 16
	parts := make([]string, 0, show+1)
	for i, c := range counts {
		if i == show {
			parts = append(parts, fmt.Sprintf("… +%d more", len(counts)-show))
			break
		}
		parts = append(parts, fmt.Sprint(c))
	}
	return strings.Join(parts, " ")
}

// checkTable runs CHECK TABLE <t>: an on-demand scrub that re-reads every
// page of the table's heap from disk, verifies its checksum, and
// quarantines fresh failures. The scrub mutates only the heap's internally
// locked quarantine set, so the table's shared lock is enough — concurrent
// readers proceed, and writers (which take the exclusive lock) queue.
func (s *Session) checkTable(st *spec.Statement) error {
	// The shared lock spans resolve + scrub (the scrub re-reads the heap,
	// so the generation must not be swapped out under it), but the report
	// prints only after release: a slow client draining the per-page
	// lines must not hold the table's writers off (lockorder rule E; the
	// window used to span the printing below).
	unlock := s.rlockName(st.From)
	tbl, err := s.Cat.Get(st.From)
	if err != nil {
		unlock()
		return err
	}
	rep := tbl.Scrub()
	unlock()
	if rep.Clean() {
		fmt.Fprintf(s.Out, "table %q: %d pages, all checksums ok\n", st.From, rep.Pages)
		return nil
	}
	fmt.Fprintf(s.Out, "table %q: %d pages, %d newly quarantined, %d quarantined total\n",
		st.From, rep.Pages, len(rep.NewBad), len(rep.Bad))
	for _, pg := range sortedPages(rep.Bad) {
		fmt.Fprintf(s.Out, "  page %d: %s\n", pg, rep.Bad[pg])
	}
	return nil
}

// showScrub runs SHOW SCRUB: the scrub state of every table — page count
// plus the pages quarantined by recovery, past CHECK TABLE runs, or scan
// failures. It only reads state; CHECK TABLE re-verifies on demand.
func (s *Session) showScrub() error {
	for _, name := range s.Cat.Names() {
		unlock := s.rlockName(name)
		tbl, err := s.Cat.Get(name)
		if err != nil {
			unlock()
			continue
		}
		pages := tbl.NumPages()
		quar := tbl.QuarantinedPages()
		unlock()
		if len(quar) == 0 {
			fmt.Fprintf(s.Out, "%-12s %d pages, clean\n", name, pages)
			continue
		}
		fmt.Fprintf(s.Out, "%-12s %d pages, %d quarantined: %s\n",
			name, pages, len(quar), renderPageRanges(sortedPages(quar)))
	}
	return nil
}

// sortedPages returns the quarantine map's page numbers in order.
func sortedPages(m map[int]string) []int {
	pages := make([]int, 0, len(m))
	for pg := range m {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	return pages
}

// renderPageRanges compresses a sorted page list into "3-5, 9" ranges so a
// long contiguous quarantine does not flood the output.
func renderPageRanges(pages []int) string {
	var parts []string
	for i := 0; i < len(pages); {
		j := i
		for j+1 < len(pages) && pages[j+1] == pages[j]+1 {
			j++
		}
		if j > i {
			parts = append(parts, fmt.Sprintf("%d-%d", pages[i], pages[j]))
		} else {
			parts = append(parts, fmt.Sprint(pages[i]))
		}
		i = j + 1
	}
	return strings.Join(parts, ", ")
}

// reportDegraded prints what a degraded projection stepped over, so a
// statement that lost rows to quarantined pages says so in its result.
// The row count is a lower bound: pages whose record count was never
// readable contribute only to the page count.
func (s *Session) reportDegraded(view *spec.View) {
	if view.Skipped.SkippedPages == 0 && view.Skipped.SkippedRows == 0 {
		return
	}
	fmt.Fprintf(s.Out, "degraded scan: skipped %d corrupt pages (>=%d rows)\n",
		view.Skipped.SkippedPages, view.Skipped.SkippedRows)
}

// train runs a TO TRAIN statement end-to-end.
func (s *Session) train(st *spec.Statement) error {
	if st.Async {
		return fmt.Errorf("sqlish: ASYNC training needs the job scheduler — connect to a bismarckd server")
	}
	ts, knobs, params, view, err := s.prepare(st)
	if err != nil {
		return err
	}
	s.reportDegraded(view)
	task, err := ts.Build(spec.BuildInput{Params: params, View: view.Table})
	if err != nil {
		return err
	}
	var out *spec.Outcome
	switch {
	case len(knobs.Executors) > 0:
		// WITH executors=...: the sharded IGD loop with remote workers
		// (SplitKnobs already pinned the solver to igd for this mode).
		out, err = spec.TrainDistributed(ts, task, knobs, view.Table)
	case knobs.Solver == "igd":
		out, err = spec.TrainIGD(task, knobs, view.Table)
	default:
		out, err = runSolver(task, ts, knobs, view.Table)
	}
	if err != nil {
		return err
	}
	if s.PreSave != nil {
		if err := s.PreSave(st.Into); err != nil {
			return err
		}
	}
	if err := s.saveModel(st.Into, ts, task, out.Model); err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "%s trained on %s via %s: %d epochs, final loss %.6g; model saved to table %q\n",
		task.Name(), st.From, out.Method, out.Epochs, out.Loss, st.Into)
	return nil
}

// runSolver dispatches the non-IGD solvers of the WITH solver knob onto
// the baseline implementations.
func runSolver(task core.Task, ts *spec.TaskSpec, k spec.Knobs, view *engine.Table) (*spec.Outcome, error) {
	if !ts.SupportsSolver(k.Solver) {
		return nil, fmt.Errorf("sqlish: task %s does not support solver=%s", ts.Name, k.Solver)
	}
	switch k.Solver {
	case "batch":
		tr := &baselines.BatchGD{Task: task, Alpha: k.Alpha, MaxIters: k.Epochs,
			RelTol: k.Tol, LineSearch: true, Seed: k.Seed}
		res, err := tr.Run(view)
		if err != nil {
			return nil, err
		}
		return &spec.Outcome{Model: res.Model, Epochs: res.Epochs,
			Loss: res.FinalLoss(), Method: "BatchGD"}, nil
	case "irls":
		lr, ok := task.(*tasks.LR)
		if !ok {
			return nil, fmt.Errorf("sqlish: solver=irls requires the lr task")
		}
		tr := &baselines.IRLS{D: lr.D, Mu: lr.Mu, MaxIters: k.Epochs, RelTol: k.Tol}
		res, err := tr.Run(view)
		if err != nil {
			return nil, err
		}
		return &spec.Outcome{Model: res.Model, Epochs: res.Iters, Loss: lastLoss(res.Losses), Method: "IRLS"}, nil
	case "als":
		lmf, ok := task.(*tasks.LMF)
		if !ok {
			return nil, fmt.Errorf("sqlish: solver=als requires the lmf task")
		}
		tr := &baselines.ALS{Rows: lmf.Rows, Cols: lmf.Cols, Rank: lmf.Rank,
			Mu: lmf.Mu, MaxSweeps: k.Epochs, RelTol: k.Tol, Seed: k.Seed}
		res, err := tr.Run(view)
		if err != nil {
			return nil, err
		}
		return &spec.Outcome{Model: res.Model, Epochs: res.Sweeps, Loss: lastLoss(res.Losses), Method: "ALS"}, nil
	}
	return nil, fmt.Errorf("sqlish: unknown solver %q", k.Solver)
}

// lastLoss returns the final recorded loss, or NaN when none was kept.
func lastLoss(losses []float64) float64 {
	if len(losses) == 0 {
		return math.NaN()
	}
	return losses[len(losses)-1]
}

// restore loads a persisted model and rebuilds its task from the metadata
// side table — the shared front half of PREDICT / EVALUATE.
func (s *Session) restore(st *spec.Statement, opt spec.ViewOptions) (*spec.TaskSpec, core.Task, vector.Dense, *spec.View, spec.Knobs, error) {
	fail := func(err error) (*spec.TaskSpec, core.Task, vector.Dense, *spec.View, spec.Knobs, error) {
		return nil, nil, nil, nil, spec.Knobs{}, err
	}
	// Only the scoring-time knobs mean anything here; reject training knobs
	// (epochs, alpha, order, ...) instead of silently ignoring a typo.
	for _, pr := range st.With {
		if pr.Key != spec.KnobThreshold && pr.Key != spec.KnobDegraded {
			return fail(fmt.Errorf("sqlish: parameter %q is not valid for %v (only threshold and degraded)", pr.Key, st.Kind))
		}
	}
	knobs, _, err := spec.SplitKnobs(st.With)
	if err != nil {
		return fail(err)
	}
	// degraded applies to the source-data scan only; the model and metadata
	// loads below stay strict — a model with quarantined pages must never
	// silently score with a subset of its coefficients.
	opt.Degraded = knobs.Degraded
	// The model name's shared lock spans both the metadata and coefficient
	// reads, so a concurrent re-TRAIN of the same name can never hand us
	// metadata from one model generation and coefficients from another.
	unlock := s.rlockName(st.Model)
	taskName, kv, err := s.loadMeta(st.Model)
	var w vector.Dense
	if err == nil {
		var dim int64
		fmt.Sscan(kv["__dim"], &dim)
		w, err = s.loadModel(st.Model, dim)
	}
	unlock()
	if err != nil {
		return fail(err)
	}
	ts, err := spec.Lookup(taskName)
	if err != nil {
		return fail(err)
	}
	delete(kv, "__dim") // reserved: model dimension, not a task parameter
	params, err := spec.RebindStrings(ts.Params, kv)
	if err != nil {
		return fail(err)
	}
	view, err := s.projectFrom(st, ts.Schema, opt)
	if err != nil {
		return fail(err)
	}
	task, err := ts.Build(spec.BuildInput{Params: params, View: view.Table})
	if err != nil {
		return fail(err)
	}
	// A sparsely-stored model (or corrupt dim metadata) can come back
	// shorter than the task dimension; pad so hooks can index w freely.
	if task.Dim() > len(w) {
		padded := vector.NewDense(task.Dim())
		copy(padded, w)
		w = padded
	}
	return ts, task, w, view, knobs, nil
}

// predict runs a TO PREDICT statement: scores the view with the persisted
// model, writing (id, score) rows INTO a table or printing a summary.
func (s *Session) predict(st *spec.Statement) error {
	ts, task, w, view, knobs, err := s.restore(st, spec.ViewOptions{OptionalLabel: true})
	if err != nil {
		return err
	}
	s.reportDegraded(view)
	if ts.Predict == nil {
		return fmt.Errorf("sqlish: task %s does not support PREDICT (use TO EVALUATE)", ts.Name)
	}
	threshold := knobs.Threshold
	if math.IsNaN(threshold) {
		threshold = ts.DefaultThreshold
	}

	// Score first, write after: a failing statement must not clobber an
	// existing destination table.
	type prediction struct {
		id    int64
		score float64
	}
	var preds []prediction
	labelIdx := len(ts.Schema) - 1
	var n, pos, correct int
	// The batch scoring loop reads through the view's primed decoded-row
	// cache (falling back to reusable scratch); it copies out id and score,
	// never the tuple itself.
	err = view.Table.Rows().Scan(func(tp engine.Tuple) error {
		score := ts.Predict(task, w, tp)
		id := int64(n)
		if tp[0].Type == engine.TInt64 {
			id = tp[0].Int
		}
		n++
		if score > threshold {
			pos++
		}
		if view.HasLabel && ts.Agrees != nil &&
			ts.Agrees(score, threshold, tp[labelIdx].Float) {
			correct++
		}
		if st.Into != "" {
			preds = append(preds, prediction{id: id, score: score})
		}
		return nil
	})
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("sqlish: no rows to predict in %s", st.From)
	}
	if st.Into != "" {
		// Shadow-generation write (same protocol as saveModel): the result
		// set is filled into a reserved shadow table with no lock on the
		// destination name, then published by Catalog.Swap under the
		// destination's exclusive lock — which now guards only the cheap
		// rename. Readers of the old table are never blocked by the fill
		// and can never see a half-filled heap; a failure (or crash)
		// mid-fill leaves the previous result table fully readable. If the
		// destination was previously a model, its __meta side table retires
		// at the same commit so no stale metadata outlives the coefficients.
		err := s.fillAndSwap(st.Into, engine.Schema{
			{Name: "id", Type: engine.TInt64},
			{Name: "score", Type: engine.TFloat64},
		}, []string{metaTable(st.Into)}, func(dst *engine.Table) error {
			for _, p := range preds {
				if err := dst.Insert(engine.Tuple{engine.I64(p.id), engine.F64(p.score)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(s.Out, "predicted %d rows into table %q\n", n, st.Into)
		return nil
	}
	if view.HasLabel && ts.Agrees != nil {
		fmt.Fprintf(s.Out, "predicted %d rows: %d positive; accuracy %.2f%%\n",
			n, pos, 100*float64(correct)/float64(n))
	} else {
		fmt.Fprintf(s.Out, "predicted %d rows: %d positive\n", n, pos)
	}
	return nil
}

// evaluate runs a TO EVALUATE statement: task-appropriate quality metrics
// of the persisted model over the view (falling back to the total
// objective loss).
func (s *Session) evaluate(st *spec.Statement) error {
	ts, task, w, view, knobs, err := s.restore(st, spec.ViewOptions{})
	if err != nil {
		return err
	}
	s.reportDegraded(view)
	fmt.Fprintf(s.Out, "%s %q on %s: ", ts.Name, st.Model, st.From)
	if ts.Evaluate != nil {
		return ts.Evaluate(task, w, view.Table, knobs.Threshold, s.Out)
	}
	loss, err := core.TotalLoss(task, w, view.Table)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "n=%d loss=%.6g\n", view.Table.NumRows(), loss)
	return nil
}

// --- model persistence ---

// ModelSchema is how trained models persist: one (idx, value) row per
// nonzero coefficient, i.e. "the model ... is then persisted as a user
// table".
var ModelSchema = engine.Schema{
	{Name: "idx", Type: engine.TInt64},
	{Name: "value", Type: engine.TFloat64},
}

// MetaSchema is the model's metadata side table: the task name and its
// fully-resolved constructor parameters, so PREDICT / EVALUATE can rebuild
// the identical task later.
var MetaSchema = engine.Schema{
	{Name: "key", Type: engine.TString},
	{Name: "value", Type: engine.TString},
}

// metaSuffix marks a model's metadata side table (shared with the
// parser's reserved-name check and the Guard's lock-key collapsing).
const metaSuffix = spec.MetaSuffix

// metaTable names the metadata side table of a model.
func metaTable(model string) string { return model + metaSuffix }

// shadowName derives the reserved in-flight generation name of a table.
func shadowName(name string) string { return name + engine.ShadowSuffix }

// buildShadow creates the reserved shadow table for name, first clearing
// any stale shadow a previously failed save left registered in this
// process (the recovery sweep handles the on-disk equivalent at startup).
func (s *Session) buildShadow(name string, schema engine.Schema) (*engine.Table, error) {
	sh := shadowName(name)
	if _, err := s.Cat.Get(sh); err == nil {
		if err := s.Cat.Drop(sh); err != nil {
			return nil, err
		}
	}
	return s.Cat.Create(sh, schema)
}

// dropShadow best-effort discards an in-flight shadow after a failed fill;
// the previous generation was never touched, so the failure is a no-op.
func (s *Session) dropShadow(name string) {
	sh := shadowName(name)
	if _, err := s.Cat.Get(sh); err == nil {
		_ = s.Cat.Drop(sh)
	}
}

// fillAndSwap runs the single-table shadow protocol: build name's shadow,
// fill and flush it (no lock on name held — readers of the previous
// generation proceed throughout), then commit via Catalog.Swap under
// name's exclusive lock, atomically retiring dropAlso names that exist.
// The fill window itself is serialized per name by the shadow name's
// exclusive lock, so two concurrent writers of one destination queue up
// instead of colliding on the shadow heap.
func (s *Session) fillAndSwap(name string, schema engine.Schema, dropAlso []string, fill func(*engine.Table) error) (err error) {
	defer s.lockName(shadowName(name))()
	defer func() {
		if err != nil && !errors.Is(err, engine.ErrInjectedCrash) {
			s.dropShadow(name)
		}
	}()
	dst, err := s.buildShadow(name, schema)
	if err != nil {
		return err
	}
	if err := fill(dst); err != nil {
		return err
	}
	if err := dst.Flush(); err != nil {
		return err
	}
	unlock := s.lockName(name)
	err = s.Cat.Swap([]string{name}, []string{shadowName(name)}, dropAlso)
	unlock()
	return err
}

// metaFillFault, when set by a test, fails the metadata fill after the
// coefficient shadow is complete — the partial-failure window that used to
// leave new coefficients paired with old (or no) metadata.
var metaFillFault func(model string) error

// saveModel persists the trained model through the shadow-generation
// protocol: both the coefficient table and the metadata side table are
// built and flushed under reserved shadow names with no lock on the model
// (readers keep scoring against the previous generation), then published
// together by one Catalog.Swap commit under the model's exclusive lock.
// The lock now guards only the rename; a failure — or a crash — anywhere
// in the fill window leaves the previous model generation fully readable,
// and the two tables can only ever move between generations as a pair.
//
// Lock order within this one call site: the shadow fill lock (serializing
// concurrent saves of the same model) is held while the model lock is
// taken for the commit. The pair is always acquired in that order and the
// model lock is never held while waiting on a shadow lock, so the
// documented no-two-model-locks cycle-freedom argument still holds.
func (s *Session) saveModel(name string, ts *spec.TaskSpec, task core.Task, w vector.Dense) (err error) {
	defer s.lockName(shadowName(name))()
	defer func() {
		if err != nil && !errors.Is(err, engine.ErrInjectedCrash) {
			s.dropShadow(name)
			s.dropShadow(metaTable(name))
		}
	}()
	tbl, err := s.buildShadow(name, ModelSchema)
	if err != nil {
		return err
	}
	for i, v := range w {
		if v == 0 {
			continue // store sparsely
		}
		if err := tbl.Insert(engine.Tuple{engine.I64(int64(i)), engine.F64(v)}); err != nil {
			return err
		}
	}
	if err := tbl.Flush(); err != nil {
		return err
	}
	meta, err := s.buildShadow(metaTable(name), MetaSchema)
	if err != nil {
		return err
	}
	if metaFillFault != nil {
		if err := metaFillFault(name); err != nil {
			return err
		}
	}
	if err := meta.Insert(engine.Tuple{engine.Str("task"), engine.Str(ts.Name)}); err != nil {
		return err
	}
	if err := meta.Insert(engine.Tuple{engine.Str("dim"), engine.Str(fmt.Sprint(task.Dim()))}); err != nil {
		return err
	}
	if ts.Snapshot != nil {
		for k, v := range ts.Snapshot(task) {
			if err := meta.Insert(engine.Tuple{engine.Str("p:" + k), engine.Str(v)}); err != nil {
				return err
			}
		}
	}
	if err := meta.Flush(); err != nil {
		return err
	}
	unlock := s.lockName(name)
	err = s.Cat.Swap(
		[]string{name, metaTable(name)},
		[]string{shadowName(name), shadowName(metaTable(name))},
		nil)
	unlock()
	return err
}

// loadModel reads the persisted coefficient table into a dense vector of
// at least the given dimension (from the metadata side table).
func (s *Session) loadModel(name string, dim int64) (vector.Dense, error) {
	tbl, err := s.Cat.Get(name)
	if err != nil {
		return nil, err
	}
	maxIdx := int64(-1)
	if err := tbl.Scan(func(tp engine.Tuple) error {
		if tp[0].Int > maxIdx {
			maxIdx = tp[0].Int
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if maxIdx+1 > dim {
		dim = maxIdx + 1
	}
	w := vector.NewDense(int(dim))
	if err := tbl.Scan(func(tp engine.Tuple) error {
		w[tp[0].Int] = tp[1].Float
		return nil
	}); err != nil {
		return nil, err
	}
	return w, nil
}

// loadMeta reads a model's metadata: the task name and its parameter map.
// The model dimension is returned under the reserved key "__dim".
func (s *Session) loadMeta(name string) (string, map[string]string, error) {
	tbl, err := s.Cat.Get(metaTable(name))
	if err != nil {
		if _, modelErr := s.Cat.Get(name); modelErr != nil {
			// Neither coefficients nor metadata: the model was never
			// trained (or was dropped) — report that, not a catalog error.
			return "", nil, &UnknownModelError{Model: name}
		}
		return "", nil, fmt.Errorf("sqlish: model %q has no metadata (was it trained by this interface?)", name)
	}
	task := ""
	kv := map[string]string{}
	err = tbl.Scan(func(tp engine.Tuple) error {
		k, v := tp[0].Str, tp[1].Str
		switch {
		case k == "task":
			task = v
		case k == "dim":
			kv["__dim"] = v
		case len(k) > 2 && k[:2] == "p:":
			kv[k[2:]] = v
		}
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	if task == "" {
		return "", nil, fmt.Errorf("sqlish: model %q metadata is missing the task name", name)
	}
	return task, kv, nil
}
