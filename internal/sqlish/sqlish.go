// Package sqlish implements the MADlib-style end-user interface of §2.1:
// statements like
//
//	SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label');
//
// are parsed and dispatched onto Bismarck trainers over a file catalog.
// The trained model is persisted as a user table (one row per coefficient),
// exactly as the paper describes. This is deliberately NOT a SQL engine —
// the paper's point is that the interface layer is thin and orthogonal to
// the unified architecture underneath.
package sqlish

import (
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/ordering"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// Session executes statements against one catalog.
type Session struct {
	Cat *engine.Catalog
	Out io.Writer
	// Epochs and Alpha tune training; zero values pick defaults (20, 0.1).
	Epochs int
	Alpha  float64
}

var stmtRe = regexp.MustCompile(`(?is)^\s*SELECT\s+([A-Za-z0-9_]+)\s*\(([^)]*)\)\s*;?\s*$`)

// Exec parses and runs one statement.
func (s *Session) Exec(stmt string) error {
	m := stmtRe.FindStringSubmatch(stmt)
	if m == nil {
		return fmt.Errorf("sqlish: cannot parse %q (expected SELECT Func('arg', ...))", stmt)
	}
	fn := strings.ToLower(m[1])
	args, err := parseArgs(m[2])
	if err != nil {
		return err
	}
	switch fn {
	case "lrtrain":
		return s.trainClassifier(args, true)
	case "svmtrain":
		return s.trainClassifier(args, false)
	case "lmftrain":
		return s.trainLMF(args)
	case "crftrain":
		return s.trainCRF(args)
	case "predict":
		return s.predict(args)
	case "tables":
		for _, n := range s.Cat.Names() {
			fmt.Fprintln(s.Out, n)
		}
		return nil
	}
	return fmt.Errorf("sqlish: unknown function %q", m[1])
}

// parseArgs splits 'a', 'b', 3 into tokens, stripping quotes.
func parseArgs(raw string) ([]string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if len(p) >= 2 && p[0] == '\'' && p[len(p)-1] == '\'' {
			p = p[1 : len(p)-1]
		}
		out[i] = p
	}
	return out, nil
}

func (s *Session) epochs() int {
	if s.Epochs > 0 {
		return s.Epochs
	}
	return 20
}

func (s *Session) alpha() float64 {
	if s.Alpha > 0 {
		return s.Alpha
	}
	return 0.1
}

// trainClassifier handles LRTrain / SVMTrain(model, table, vecCol, labelCol).
func (s *Session) trainClassifier(args []string, logistic bool) error {
	if len(args) != 4 {
		return fmt.Errorf("sqlish: Train needs (model, table, vecCol, labelCol)")
	}
	model, tblName, vecCol, labelCol := args[0], args[1], args[2], args[3]
	tbl, err := s.Cat.Get(tblName)
	if err != nil {
		return err
	}
	vi := tbl.Schema.ColIndex(vecCol)
	li := tbl.Schema.ColIndex(labelCol)
	if vi < 0 || li < 0 {
		return fmt.Errorf("sqlish: table %s has no columns %s/%s", tblName, vecCol, labelCol)
	}
	// Determine dimension with one scan.
	dim := 0
	err = tbl.Scan(func(tp engine.Tuple) error {
		switch tp[vi].Type {
		case engine.TDenseVec:
			if d := len(tp[vi].Dense); d > dim {
				dim = d
			}
		case engine.TSparseVec:
			if d := tp[vi].Sparse.MaxIdx(); d > dim {
				dim = d
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if dim == 0 {
		return fmt.Errorf("sqlish: no feature vectors found in %s.%s", tblName, vecCol)
	}
	// The tasks package expects the standard (id, vec, label) layout; wrap
	// arbitrary layouts by projecting during training via a view table.
	view, err := projectView(tbl, vi, li)
	if err != nil {
		return err
	}
	var task core.Task
	if logistic {
		task = tasks.NewLR(dim)
	} else {
		task = tasks.NewSVM(dim)
	}
	tr := &core.Trainer{Task: task, Step: core.DefaultStep(s.alpha()), MaxEpochs: s.epochs(),
		Order: ordering.ShuffleOnce{}, Seed: 1}
	res, err := tr.Run(view)
	if err != nil {
		return err
	}
	if err := s.saveModel(model, res.Model); err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "%s trained on %s: %d epochs, final loss %.6g; model saved to table %q\n",
		task.Name(), tblName, res.Epochs, res.FinalLoss(), model)
	return nil
}

// projectView materializes an (id, vec, label) view of the source table.
func projectView(tbl *engine.Table, vi, li int) (*engine.Table, error) {
	schema := tasks.DenseExampleSchema
	// Peek the vector type.
	sparse := false
	err := tbl.Scan(func(tp engine.Tuple) error {
		sparse = tp[vi].Type == engine.TSparseVec
		return errStopScan
	})
	if err != nil && err != errStopScan {
		return nil, err
	}
	if sparse {
		schema = tasks.SparseExampleSchema
	}
	view := engine.NewMemTable(tbl.Name+"_view", schema)
	id := int64(0)
	err = tbl.Scan(func(tp engine.Tuple) error {
		view.MustInsert(engine.Tuple{engine.I64(id), tp[vi], tp[li]})
		id++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return view, nil
}

var errStopScan = fmt.Errorf("stop")

// trainLMF handles LMFTrain(model, table, rows, cols, rank).
func (s *Session) trainLMF(args []string) error {
	if len(args) != 5 {
		return fmt.Errorf("sqlish: LMFTrain needs (model, table, rows, cols, rank)")
	}
	model, tblName := args[0], args[1]
	rows, err1 := strconv.Atoi(args[2])
	cols, err2 := strconv.Atoi(args[3])
	rank, err3 := strconv.Atoi(args[4])
	if err1 != nil || err2 != nil || err3 != nil {
		return fmt.Errorf("sqlish: LMFTrain rows/cols/rank must be integers")
	}
	tbl, err := s.Cat.Get(tblName)
	if err != nil {
		return err
	}
	task := tasks.NewLMF(rows, cols, rank)
	tr := &core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.02, Rho: 0.95},
		MaxEpochs: s.epochs(), Order: ordering.ShuffleOnce{}, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		return err
	}
	if err := s.saveModel(model, res.Model); err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "LMF trained on %s: %d epochs, final loss %.6g; model saved to table %q\n",
		tblName, res.Epochs, res.FinalLoss(), model)
	return nil
}

// trainCRF handles CRFTrain(model, table, numFeatures, numLabels).
func (s *Session) trainCRF(args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("sqlish: CRFTrain needs (model, table, numFeatures, numLabels)")
	}
	model, tblName := args[0], args[1]
	f, err1 := strconv.Atoi(args[2])
	l, err2 := strconv.Atoi(args[3])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("sqlish: CRFTrain numFeatures/numLabels must be integers")
	}
	tbl, err := s.Cat.Get(tblName)
	if err != nil {
		return err
	}
	task := tasks.NewCRF(f, l)
	tr := &core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.1, Rho: 0.9},
		MaxEpochs: s.epochs(), Order: ordering.ShuffleOnce{}, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		return err
	}
	if err := s.saveModel(model, res.Model); err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "CRF trained on %s: %d epochs, final NLL %.6g; model saved to table %q\n",
		tblName, res.Epochs, res.FinalLoss(), model)
	return nil
}

// predict handles Predict(model, table, vecCol): prints the fraction of
// positive predictions (and accuracy when a 'label' column exists).
func (s *Session) predict(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("sqlish: Predict needs (model, table, vecCol)")
	}
	w, err := s.loadModel(args[0])
	if err != nil {
		return err
	}
	tbl, err := s.Cat.Get(args[1])
	if err != nil {
		return err
	}
	vi := tbl.Schema.ColIndex(args[2])
	if vi < 0 {
		return fmt.Errorf("sqlish: no column %q", args[2])
	}
	li := tbl.Schema.ColIndex("label")
	var n, pos, correct int
	err = tbl.Scan(func(tp engine.Tuple) error {
		var margin float64
		if tp[vi].Type == engine.TSparseVec {
			margin = vector.DotSparse(w, tp[vi].Sparse)
		} else {
			x := tp[vi].Dense
			d := len(x)
			if d > len(w) {
				d = len(w)
			}
			margin = vector.Dot(w[:d], x[:d])
		}
		n++
		if margin > 0 {
			pos++
		}
		if li >= 0 && (margin > 0) == (tp[li].Float > 0) {
			correct++
		}
		return nil
	})
	if err != nil {
		return err
	}
	if li >= 0 {
		fmt.Fprintf(s.Out, "predicted %d rows: %d positive; accuracy %.2f%%\n", n, pos, 100*float64(correct)/float64(n))
	} else {
		fmt.Fprintf(s.Out, "predicted %d rows: %d positive\n", n, pos)
	}
	return nil
}

// ModelSchema is how trained models persist: one (idx, value) row per
// coefficient, i.e. "the model ... is then persisted as a user table".
var ModelSchema = engine.Schema{
	{Name: "idx", Type: engine.TInt64},
	{Name: "value", Type: engine.TFloat64},
}

func (s *Session) saveModel(name string, w vector.Dense) error {
	// Drop a stale model of the same name, then recreate.
	if _, err := s.Cat.Get(name); err == nil {
		if err := s.Cat.Drop(name); err != nil {
			return err
		}
	}
	tbl, err := s.Cat.Create(name, ModelSchema)
	if err != nil {
		return err
	}
	for i, v := range w {
		if v == 0 {
			continue // store sparsely
		}
		if err := tbl.Insert(engine.Tuple{engine.I64(int64(i)), engine.F64(v)}); err != nil {
			return err
		}
	}
	return tbl.Flush()
}

func (s *Session) loadModel(name string) (vector.Dense, error) {
	tbl, err := s.Cat.Get(name)
	if err != nil {
		return nil, err
	}
	maxIdx := int64(-1)
	if err := tbl.Scan(func(tp engine.Tuple) error {
		if tp[0].Int > maxIdx {
			maxIdx = tp[0].Int
		}
		return nil
	}); err != nil {
		return nil, err
	}
	w := vector.NewDense(int(maxIdx + 1))
	if err := tbl.Scan(func(tp engine.Tuple) error {
		w[tp[0].Int] = tp[1].Float
		return nil
	}); err != nil {
		return nil, err
	}
	return w, nil
}
