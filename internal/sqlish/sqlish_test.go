package sqlish

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/tasks"
)

func session(t *testing.T) (*Session, *bytes.Buffer) {
	t.Helper()
	cat := engine.NewCatalog()
	var out bytes.Buffer
	return &Session{Cat: cat, Out: &out, Epochs: 8, Alpha: 0.2}, &out
}

func loadForest(t *testing.T, s *Session, n int) {
	t.Helper()
	src := data.Forest(n, 5)
	dst, err := s.Cat.Create("papers", tasks.DenseExampleSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
}

func TestSVMTrainAndPredict(t *testing.T) {
	s, out := session(t)
	loadForest(t, s, 600)
	if err := s.Exec("SELECT SVMTrain('myModel', 'papers', 'vec', 'label');"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SVM trained") {
		t.Fatalf("output: %s", out.String())
	}
	if _, err := s.Cat.Get("myModel"); err != nil {
		t.Fatal("model table not persisted")
	}
	out.Reset()
	if err := s.Exec("SELECT Predict('myModel', 'papers', 'vec')"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "accuracy") {
		t.Fatalf("predict output: %s", got)
	}
	// A trained SVM on learnable data should beat coin flipping clearly.
	m := regexp.MustCompile(`accuracy ([0-9.]+)%`).FindStringSubmatch(got)
	if m == nil {
		t.Fatalf("cannot parse accuracy from %q", got)
	}
	acc, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 75 {
		t.Fatalf("accuracy %.1f%% too low", acc)
	}
}

func TestLRTrainRetrainsOverExistingModel(t *testing.T) {
	s, _ := session(t)
	loadForest(t, s, 200)
	if err := s.Exec("SELECT LRTrain('m', 'papers', 'vec', 'label')"); err != nil {
		t.Fatal(err)
	}
	// Re-training must replace, not fail on, the existing model table.
	if err := s.Exec("SELECT LRTrain('m', 'papers', 'vec', 'label')"); err != nil {
		t.Fatal(err)
	}
}

func TestLMFTrain(t *testing.T) {
	s, out := session(t)
	src := data.MovieLens(40, 30, 800, 4, 0.2, 9)
	dst, err := s.Cat.Create("ratings", tasks.RatingSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec("SELECT LMFTrain('mf', 'ratings', 40, 30, 4)"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LMF trained") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestCRFTrain(t *testing.T) {
	s, out := session(t)
	src := data.CoNLL(40, 100, 3, 6, 13)
	dst, err := s.Cat.Create("seqs", tasks.SeqSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec("SELECT CRFTrain('crfm', 'seqs', 100, 3)"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CRF trained") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestTablesStatement(t *testing.T) {
	s, out := session(t)
	loadForest(t, s, 10)
	if err := s.Exec("SELECT Tables()"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "papers") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestParseErrors(t *testing.T) {
	s, _ := session(t)
	for _, stmt := range []string{
		"DROP TABLE x",
		"SELECT NoSuchFunc('a')",
		"SELECT LRTrain('only-two', 'args')",
		"SELECT LMFTrain('m', 't', 'x', 'y', 'z')", // non-integer dims
		"SELECT Predict('missing', 'papers', 'vec')",
	} {
		if err := s.Exec(stmt); err == nil {
			t.Fatalf("statement %q should fail", stmt)
		}
	}
}

func TestSparseTraining(t *testing.T) {
	s, out := session(t)
	src := data.DBLife(300, 2000, 8, 3)
	dst, err := s.Cat.Create("docs", tasks.SparseExampleSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec("SELECT LRTrain('sm', 'docs', 'vec', 'label')"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LR trained") {
		t.Fatalf("output: %s", out.String())
	}
}
