// Package tasks implements the analytics techniques of Figure 1 as Bismarck
// tasks: logistic regression, SVM classification, low-rank matrix
// factorization, linear-chain conditional random fields, Kalman filter
// fitting, least squares (including the paper's 1-D CA-TX example), and
// portfolio optimization. Each task is a few dozen lines — the point of the
// paper — because everything else (epoch loop, ordering, parallelism,
// sampling) is shared.
package tasks

import (
	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// Standard schemas used by the classification-style tasks and generators.
var (
	// DenseExampleSchema is (id, vec float[], label) — Forest-style rows.
	DenseExampleSchema = engine.Schema{
		{Name: "id", Type: engine.TInt64},
		{Name: "vec", Type: engine.TDenseVec},
		{Name: "label", Type: engine.TFloat64},
	}
	// SparseExampleSchema is (id, vec sparse, label) — DBLife-style rows.
	SparseExampleSchema = engine.Schema{
		{Name: "id", Type: engine.TInt64},
		{Name: "vec", Type: engine.TSparseVec},
		{Name: "label", Type: engine.TFloat64},
	}
	// RatingSchema is (i, j, rating) — MovieLens-style sparse matrix cells.
	RatingSchema = engine.Schema{
		{Name: "row", Type: engine.TInt64},
		{Name: "col", Type: engine.TInt64},
		{Name: "rating", Type: engine.TFloat64},
	}
	// SeqSchema is one token sequence per row for CRF: offsets[t]..offsets[t+1]
	// index the active features of token t in feats; labels[t] is its tag.
	SeqSchema = engine.Schema{
		{Name: "id", Type: engine.TInt64},
		{Name: "offsets", Type: engine.TInt32Vec},
		{Name: "feats", Type: engine.TInt32Vec},
		{Name: "labels", Type: engine.TInt32Vec},
	}
	// SeriesSchema is (t, y float[]) — one time step of a noisy series.
	SeriesSchema = engine.Schema{
		{Name: "t", Type: engine.TInt64},
		{Name: "y", Type: engine.TDenseVec},
	}
	// ReturnSchema is (id, r float[]) — one observation of asset returns.
	ReturnSchema = engine.Schema{
		{Name: "id", Type: engine.TInt64},
		{Name: "r", Type: engine.TDenseVec},
	}
)

// Column positions shared by DenseExampleSchema and SparseExampleSchema.
const (
	ColID    = 0
	ColVec   = 1
	ColLabel = 2
)

// dotFeatures computes w·x where x is the tuple's feature value, which may
// be dense or sparse, against a dense snapshot w. Feature components beyond
// the model's dimension are ignored (a prediction-time table may be wider
// than the table the model was trained on).
func dotFeatures(w vector.Dense, v engine.Value) float64 {
	if v.Type == engine.TSparseVec {
		return vector.DotSparse(w, v.Sparse)
	}
	x := v.Dense
	if len(x) > len(w) {
		x = x[:len(w)]
	}
	return vector.Dot(w[:len(x)], x)
}

// dotModel computes w·x reading components through the Model interface,
// with a fast path for the plain dense model.
func dotModel(m core.Model, v engine.Value) float64 {
	if dm, ok := m.(*core.DenseModel); ok {
		return dotFeatures(dm.W, v)
	}
	var s float64
	d := m.Dim()
	if v.Type == engine.TSparseVec {
		for k, i := range v.Sparse.Idx {
			if int(i) < d {
				s += m.Get(int(i)) * v.Sparse.Val[k]
			}
		}
		return s
	}
	for i, x := range v.Dense {
		if i >= d {
			break
		}
		s += m.Get(i) * x
	}
	return s
}

// axpyModel performs m += c·x (the paper's Scale_And_Add) through the Model
// interface, with a fast path for the plain dense model.
func axpyModel(m core.Model, v engine.Value, c float64) {
	if dm, ok := m.(*core.DenseModel); ok {
		if v.Type == engine.TSparseVec {
			vector.AxpySparse(dm.W, v.Sparse, c)
		} else {
			x := v.Dense
			if len(x) > len(dm.W) {
				x = x[:len(dm.W)] // ignore features beyond the model dim
			}
			vector.Axpy(dm.W[:len(x)], x, c)
		}
		return
	}
	d := m.Dim()
	if v.Type == engine.TSparseVec {
		for k, i := range v.Sparse.Idx {
			if int(i) < d {
				m.Add(int(i), c*v.Sparse.Val[k])
			}
		}
		return
	}
	for i, x := range v.Dense {
		if i >= d {
			break
		}
		m.Add(i, c*x)
	}
}

// fusedStep is the shared transition-function kernel of the linear tasks:
// it computes wx = w·x, calls gain(wx) for the step coefficient (the task's
// scalar work — sigmoid, margin test, residual, per-step shrinkage — runs
// between the two phases), applies w += gain(wx)·x, and returns wx. The
// DenseModel fast path runs the fused unrolled vector kernels; other models
// go through the component-wise Model interface. The gain closure must not
// escape — it is called exactly once, so Go keeps it on the stack and the
// steady-state step is allocation-free.
func fusedStep(m core.Model, v engine.Value, gain func(wx float64) float64) float64 {
	if dm, ok := m.(*core.DenseModel); ok {
		if v.Type == engine.TSparseVec {
			return vector.DotAxpySparse(dm.W, v.Sparse, gain)
		}
		x := v.Dense
		if len(x) > len(dm.W) {
			x = x[:len(dm.W)] // ignore features beyond the model dim
		}
		return vector.DotAxpy(dm.W[:len(x)], x, gain)
	}
	wx := dotModel(m, v)
	if c := gain(wx); c != 0 {
		axpyModel(m, v, c)
	}
	return wx
}

// shrinkTouched applies per-step L2 shrinkage w_i ← w_i·(1−αµ) only on the
// coordinates touched by the example — the standard sparse-SGD treatment of
// the regularizer, which keeps the transition cost proportional to the
// example's nonzeros.
func shrinkTouched(m core.Model, v engine.Value, alphaMu float64) {
	if alphaMu <= 0 {
		return
	}
	c := -alphaMu
	d := m.Dim()
	if v.Type == engine.TSparseVec {
		for _, i := range v.Sparse.Idx {
			if int(i) < d {
				m.Add(int(i), c*m.Get(int(i)))
			}
		}
		return
	}
	for i := range v.Dense {
		if i >= d {
			break
		}
		m.Add(i, c*m.Get(i))
	}
}

// DotFeatures computes w·x for a dense or sparse feature value against a
// dense model snapshot; exported for the task registration layer.
func DotFeatures(w vector.Dense, v engine.Value) float64 { return dotFeatures(w, v) }
