package tasks

import (
	"math"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// CRF is a linear-chain conditional random field for sequence labeling
// (text chunking on CoNLL in the paper). For a token sequence x with tag
// sequence y the model scores
//
//	score(x, y) = Σ_t Σ_{f ∈ feats(x,t)} w_em[f, y_t] + Σ_{t>0} w_tr[y_{t−1}, y_t]
//
// and we minimize the negative conditional log-likelihood
// Σ_k [log Z(x_k) − score(x_k, y_k)] (Figure 1, maximizing the weights of
// features F_j). One tuple is one whole sequence; the gradient step needs
// the forward–backward marginals, making CRF the paper's "next generation"
// task — and still just another transition function in Bismarck.
//
// The flattened model stores emissions first (feature-major: w_em[f, y] at
// f·L + y), then the L×L transition block.
type CRF struct {
	F, L int // number of observation features, number of labels
}

// NewCRF returns a chain CRF task with f binary observation features and l
// labels.
func NewCRF(f, l int) *CRF { return &CRF{F: f, L: l} }

// Name implements core.Task.
func (t *CRF) Name() string { return "CRF" }

// Dim implements core.Task.
func (t *CRF) Dim() int { return t.F*t.L + t.L*t.L }

func (t *CRF) emOff(f, y int) int   { return f*t.L + y }
func (t *CRF) trOff(y1, y2 int) int { return t.F*t.L + y1*t.L + y2 }

// seq unpacks one tuple of SeqSchema.
type seq struct {
	offsets []int32 // len T+1
	feats   []int32
	labels  []int32 // len T
}

func decodeSeq(e engine.Tuple) seq {
	return seq{offsets: e[1].Ints, feats: e[2].Ints, labels: e[3].Ints}
}

func (s seq) T() int { return len(s.labels) }

// tokenFeats returns the active feature ids of token t.
func (s seq) tokenFeats(t int) []int32 { return s.feats[s.offsets[t]:s.offsets[t+1]] }

// reader gives fast dense access when possible, falling back to Model.
type reader struct {
	w vector.Dense // non-nil fast path
	m core.Model
}

func newReader(m core.Model) reader {
	if dm, ok := m.(*core.DenseModel); ok {
		return reader{w: dm.W, m: m}
	}
	return reader{m: m}
}

func (r reader) get(i int) float64 {
	if r.w != nil {
		return r.w[i]
	}
	return r.m.Get(i)
}

func (r reader) add(i int, d float64) {
	if r.w != nil {
		r.w[i] += d
		return
	}
	r.m.Add(i, d)
}

// inference runs forward-backward, returning the log-partition, the node
// potentials, and the alpha/beta tables (all in log space, T×L row-major).
func (t *CRF) inference(r reader, s seq) (logZ float64, node, al, be []float64) {
	T, L := s.T(), t.L
	node = make([]float64, T*L)
	for tt := 0; tt < T; tt++ {
		fs := s.tokenFeats(tt)
		for y := 0; y < L; y++ {
			var sc float64
			for _, f := range fs {
				sc += r.get(t.emOff(int(f), y))
			}
			node[tt*L+y] = sc
		}
	}
	al = make([]float64, T*L)
	be = make([]float64, T*L)
	copy(al[:L], node[:L])
	tmp := make([]float64, L)
	for tt := 1; tt < T; tt++ {
		for y := 0; y < L; y++ {
			for y1 := 0; y1 < L; y1++ {
				tmp[y1] = al[(tt-1)*L+y1] + r.get(t.trOff(y1, y))
			}
			al[tt*L+y] = logSumExp(tmp) + node[tt*L+y]
		}
	}
	for y := 0; y < L; y++ {
		be[(T-1)*L+y] = 0
	}
	for tt := T - 2; tt >= 0; tt-- {
		for y := 0; y < L; y++ {
			for y2 := 0; y2 < L; y2++ {
				tmp[y2] = r.get(t.trOff(y, y2)) + node[(tt+1)*L+y2] + be[(tt+1)*L+y2]
			}
			be[tt*L+y] = logSumExp(tmp)
		}
	}
	logZ = logSumExp(al[(T-1)*L:])
	return logZ, node, al, be
}

// Step implements core.Task: w += α(empirical − expected feature counts).
func (t *CRF) Step(m core.Model, e engine.Tuple, alpha float64) {
	s := decodeSeq(e)
	T, L := s.T(), t.L
	if T == 0 {
		return
	}
	r := newReader(m)
	logZ, node, al, be := t.inference(r, s)

	// Empirical counts: +α on the gold features and transitions.
	for tt := 0; tt < T; tt++ {
		y := int(s.labels[tt])
		for _, f := range s.tokenFeats(tt) {
			r.add(t.emOff(int(f), y), alpha)
		}
		if tt > 0 {
			r.add(t.trOff(int(s.labels[tt-1]), y), alpha)
		}
	}
	// Expected counts: −α·marginal on every feature/label pair.
	for tt := 0; tt < T; tt++ {
		fs := s.tokenFeats(tt)
		for y := 0; y < L; y++ {
			p := math.Exp(al[tt*L+y] + be[tt*L+y] - logZ)
			if p == 0 {
				continue
			}
			for _, f := range fs {
				r.add(t.emOff(int(f), y), -alpha*p)
			}
		}
	}
	for tt := 1; tt < T; tt++ {
		for y1 := 0; y1 < L; y1++ {
			a := al[(tt-1)*L+y1]
			for y2 := 0; y2 < L; y2++ {
				p := math.Exp(a + r.get(t.trOff(y1, y2)) + node[tt*L+y2] + be[tt*L+y2] - logZ)
				if p != 0 {
					r.add(t.trOff(y1, y2), -alpha*p)
				}
			}
		}
	}
}

// Loss implements core.Task: the sequence's negative log-likelihood
// log Z(x) − score(x, y).
func (t *CRF) Loss(w vector.Dense, e engine.Tuple) float64 {
	s := decodeSeq(e)
	if s.T() == 0 {
		return 0
	}
	r := reader{w: w}
	logZ, node, _, _ := t.inference(r, s)
	var score float64
	for tt := 0; tt < s.T(); tt++ {
		y := int(s.labels[tt])
		score += node[tt*t.L+y]
		if tt > 0 {
			score += w[t.trOff(int(s.labels[tt-1]), y)]
		}
	}
	return logZ - score
}

// Decode returns the Viterbi-optimal label sequence for the tuple's tokens
// under model w.
func (t *CRF) Decode(w vector.Dense, e engine.Tuple) []int32 {
	s := decodeSeq(e)
	T, L := s.T(), t.L
	if T == 0 {
		return nil
	}
	r := reader{w: w}
	node := make([]float64, T*L)
	for tt := 0; tt < T; tt++ {
		fs := s.tokenFeats(tt)
		for y := 0; y < L; y++ {
			var sc float64
			for _, f := range fs {
				sc += r.get(t.emOff(int(f), y))
			}
			node[tt*L+y] = sc
		}
	}
	delta := make([]float64, T*L)
	back := make([]int32, T*L)
	copy(delta[:L], node[:L])
	for tt := 1; tt < T; tt++ {
		for y := 0; y < L; y++ {
			best, arg := math.Inf(-1), 0
			for y1 := 0; y1 < L; y1++ {
				v := delta[(tt-1)*L+y1] + w[t.trOff(y1, y)]
				if v > best {
					best, arg = v, y1
				}
			}
			delta[tt*L+y] = best + node[tt*L+y]
			back[tt*L+y] = int32(arg)
		}
	}
	out := make([]int32, T)
	best, arg := math.Inf(-1), 0
	for y := 0; y < L; y++ {
		if delta[(T-1)*L+y] > best {
			best, arg = delta[(T-1)*L+y], y
		}
	}
	out[T-1] = int32(arg)
	for tt := T - 1; tt > 0; tt-- {
		out[tt-1] = back[tt*L+int(out[tt])]
	}
	return out
}

// logSumExp computes log Σ exp(x_i) stably.
func logSumExp(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}
