package tasks

import (
	"fmt"
	"math"

	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// BinaryClassifier is implemented by tasks whose Predict-style score has a
// sign/threshold semantics (LR returns a probability, SVM a margin).
type BinaryClassifier interface {
	Predict(w vector.Dense, x engine.Value) float64
}

// BinaryMetrics summarizes binary classification quality on a labeled
// table.
type BinaryMetrics struct {
	N                 int
	TP, TN, FP, FN    int
	Accuracy          float64
	Precision, Recall float64
	F1                float64
}

// EvaluateBinary scores every (vec, label) row of a DenseExampleSchema or
// SparseExampleSchema table. `threshold` separates the two classes in the
// classifier's score space: 0.5 for LR probabilities, 0 for SVM margins.
func EvaluateBinary(c BinaryClassifier, w vector.Dense, tbl *engine.Table, threshold float64) (BinaryMetrics, error) {
	var m BinaryMetrics
	err := tbl.Rows().Scan(func(tp engine.Tuple) error {
		score := c.Predict(w, tp[ColVec])
		pred := score > threshold
		actual := tp[ColLabel].Float > 0
		m.N++
		switch {
		case pred && actual:
			m.TP++
		case !pred && !actual:
			m.TN++
		case pred && !actual:
			m.FP++
		default:
			m.FN++
		}
		return nil
	})
	if err != nil {
		return m, err
	}
	if m.N == 0 {
		return m, fmt.Errorf("tasks: EvaluateBinary on empty table")
	}
	m.Accuracy = float64(m.TP+m.TN) / float64(m.N)
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m, nil
}

// RMSE evaluates the root-mean-squared reconstruction error of an LMF model
// over a rating table.
func (t *LMF) RMSE(w vector.Dense, tbl *engine.Table) (float64, error) {
	var se float64
	n := 0
	err := tbl.Rows().Scan(func(tp engine.Tuple) error {
		d := t.Predict(w, int(tp[0].Int), int(tp[1].Int)) - tp[2].Float
		se += d * d
		n++
		return nil
	})
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("tasks: RMSE on empty table")
	}
	return math.Sqrt(se / float64(n)), nil
}

// TokenAccuracy evaluates a CRF model's Viterbi tagging accuracy over a
// sequence table, returning (correct, total).
func (t *CRF) TokenAccuracy(w vector.Dense, tbl *engine.Table) (correct, total int, err error) {
	err = tbl.Rows().Scan(func(tp engine.Tuple) error {
		pred := t.Decode(w, tp)
		gold := tp[3].Ints
		for i := range gold {
			total++
			if pred[i] == gold[i] {
				correct++
			}
		}
		return nil
	})
	return correct, total, err
}
