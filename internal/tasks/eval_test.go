package tasks

import (
	"math"
	"math/rand"
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

func TestEvaluateBinaryPerfectClassifier(t *testing.T) {
	tbl := engine.NewMemTable("d", DenseExampleSchema)
	// x[0] determines the label exactly.
	for i := 0; i < 40; i++ {
		y := float64(1)
		x := vector.Dense{1}
		if i%2 == 0 {
			y, x = -1, vector.Dense{-1}
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(y)})
	}
	task := NewSVM(1)
	w := vector.Dense{1}
	m, err := EvaluateBinary(task, w, tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 1 || m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.TP != 20 || m.TN != 20 || m.FP != 0 || m.FN != 0 {
		t.Fatalf("confusion = %+v", m)
	}
}

func TestEvaluateBinaryAllWrong(t *testing.T) {
	tbl := engine.NewMemTable("d", DenseExampleSchema)
	tbl.MustInsert(engine.Tuple{engine.I64(0), engine.DenseV(vector.Dense{1}), engine.F64(-1)})
	tbl.MustInsert(engine.Tuple{engine.I64(1), engine.DenseV(vector.Dense{-1}), engine.F64(1)})
	m, err := EvaluateBinary(NewSVM(1), vector.Dense{1}, tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 0 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestEvaluateBinaryEmptyTable(t *testing.T) {
	tbl := engine.NewMemTable("d", DenseExampleSchema)
	if _, err := EvaluateBinary(NewSVM(1), vector.Dense{1}, tbl, 0); err == nil {
		t.Fatal("expected error on empty table")
	}
}

func TestLMFRMSE(t *testing.T) {
	tbl := engine.NewMemTable("r", RatingSchema)
	task := NewLMF(2, 2, 1)
	// Model: L = [1;2], R = [3;4] => predictions 3,4,6,8.
	w := vector.Dense{1, 2, 3, 4}
	tbl.MustInsert(engine.Tuple{engine.I64(0), engine.I64(0), engine.F64(3)}) // exact
	tbl.MustInsert(engine.Tuple{engine.I64(1), engine.I64(1), engine.F64(10)})
	got, err := task.RMSE(w, tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((0 + 4) / 2.0) // errors 0 and 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	empty := engine.NewMemTable("e", RatingSchema)
	if _, err := task.RMSE(w, empty); err == nil {
		t.Fatal("expected error on empty table")
	}
}

func TestCRFTokenAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	tbl := engine.NewMemTable("seq", SeqSchema)
	const F, L = 6, 2
	for s := 0; s < 40; s++ {
		T := 3 + rng.Intn(4)
		offsets := make([]int32, T+1)
		var feats []int32
		labels := make([]int32, T)
		for tt := 0; tt < T; tt++ {
			f := int32(rng.Intn(F))
			labels[tt] = f % 2
			feats = append(feats, f)
			offsets[tt+1] = int32(len(feats))
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(s)), engine.IntsV(offsets), engine.IntsV(feats), engine.IntsV(labels)})
	}
	task := NewCRF(F, L)
	tr := &core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.2, Rho: 0.95}, MaxEpochs: 25, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	correct, total, err := task.TokenAccuracy(res.Model, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 || float64(correct)/float64(total) < 0.9 {
		t.Fatalf("accuracy %d/%d", correct, total)
	}
}
