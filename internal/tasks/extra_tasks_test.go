package tasks

import (
	"math"
	"math/rand"
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// --- Lasso ---

func TestLassoGradientSmoothPart(t *testing.T) {
	// With Mu=0 the lasso step is exactly the least-squares gradient.
	rng := rand.New(rand.NewSource(1))
	task := NewLasso(4, 0)
	tp := engine.Tuple{engine.I64(0), engine.DenseV(randDense(rng, 4)), engine.F64(1.2)}
	fdCheck(t, task, tp, randDense(rng, 4), 1e-4)
}

func TestLassoProxSoftThresholds(t *testing.T) {
	task := NewLasso(3, 1.0)
	m := &core.DenseModel{W: vector.Dense{5, -5, 0.0001}}
	// Example with zero features: only the prox should act (via Step with a
	// dense all-ones vector and y chosen so the residual is 0).
	x := vector.Dense{0, 0, 0}
	tp := engine.Tuple{engine.I64(0), engine.DenseV(x), engine.F64(0)}
	task.Step(m, tp, 0.5) // amu = 0.5
	if math.Abs(m.W[0]-4.5) > 1e-12 || math.Abs(m.W[1]+4.5) > 1e-12 || m.W[2] != 0 {
		t.Fatalf("prox result %v", m.W)
	}
}

func TestLassoInducesSparsity(t *testing.T) {
	// y depends only on features 0 and 1; lasso should zero the rest.
	rng := rand.New(rand.NewSource(2))
	tbl := engine.NewMemTable("d", DenseExampleSchema)
	const d = 20
	for i := 0; i < 400; i++ {
		x := randDense(rng, d)
		y := 2*x[0] - 3*x[1] + 0.05*rng.NormFloat64()
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(y)})
	}
	task := NewLasso(d, 0.02)
	tr := &core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.05, Rho: 0.97}, MaxEpochs: 60, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Model[0]-2) > 0.3 || math.Abs(res.Model[1]+3) > 0.3 {
		t.Fatalf("signal coefficients off: %v %v", res.Model[0], res.Model[1])
	}
	nnz := task.NNZ(res.Model, 0.05)
	if nnz > 6 {
		t.Fatalf("lasso kept %d coefficients, expected near 2", nnz)
	}
	if task.RegPenalty(res.Model) <= 0 {
		t.Fatal("RegPenalty should be positive for a nonzero model")
	}
}

// --- Softmax ---

func TestSoftmaxGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	task := NewSoftmax(3, 4)
	tp := engine.Tuple{engine.I64(0), engine.DenseV(randDense(rng, 3)), engine.F64(2)}
	fdCheck(t, task, tp, randDense(rng, task.Dim()), 1e-3)
}

func TestSoftmaxGradientSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	task := NewSoftmax(6, 3)
	x := vector.NewSparse([]int32{0, 4}, []float64{1.5, -0.5})
	tp := engine.Tuple{engine.I64(0), engine.SparseV(x), engine.F64(1)}
	fdCheck(t, task, tp, randDense(rng, task.Dim()), 1e-3)
}

func TestSoftmaxLearnsThreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := engine.NewMemTable("d", DenseExampleSchema)
	centers := []vector.Dense{{3, 0}, {-3, 3}, {0, -3}}
	for i := 0; i < 300; i++ {
		c := i % 3
		x := vector.Dense{centers[c][0] + 0.5*rng.NormFloat64(), centers[c][1] + 0.5*rng.NormFloat64()}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(float64(c))})
	}
	task := NewSoftmax(2, 3)
	tr := &core.Trainer{Task: task, Step: core.DefaultStep(0.3), MaxEpochs: 25, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	tbl.Scan(func(tp engine.Tuple) error {
		if task.Predict(res.Model, tp[ColVec]) == int(tp[ColLabel].Float) {
			correct++
		}
		return nil
	})
	if correct < 290 {
		t.Fatalf("softmax accuracy %d/300", correct)
	}
}

func TestSoftmaxProbsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	task := NewSoftmax(4, 5)
	m := &core.DenseModel{W: randDense(rng, task.Dim())}
	p := task.probs(m, engine.DenseV(randDense(rng, 4)))
	var sum float64
	for _, x := range p {
		if x < 0 {
			t.Fatal("negative probability")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
}

// --- MaxCut ---

// ringGraph builds an n-cycle with unit weights; its max cut is n for even
// n (alternating assignment) and n−1 for odd n.
func ringGraph(n int) *engine.Table {
	tbl := engine.NewMemTable("edges", RatingSchema)
	for i := 0; i < n; i++ {
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.I64(int64((i + 1) % n)), engine.F64(1)})
	}
	return tbl
}

func TestMaxCutInitUnitNorm(t *testing.T) {
	task := NewMaxCut(7, 3)
	w := task.InitModel(1)
	for v := 0; v < 7; v++ {
		var norm float64
		for q := 0; q < 3; q++ {
			norm += w[v*3+q] * w[v*3+q]
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("vertex %d norm² = %v", v, norm)
		}
	}
}

func TestMaxCutStepKeepsUnitNorm(t *testing.T) {
	task := NewMaxCut(4, 3)
	m := &core.DenseModel{W: task.InitModel(2)}
	for i := 0; i < 20; i++ {
		tp := engine.Tuple{engine.I64(int64(i % 4)), engine.I64(int64((i + 1) % 4)), engine.F64(1)}
		task.Step(m, tp, 0.3)
	}
	for v := 0; v < 4; v++ {
		var norm float64
		for q := 0; q < 3; q++ {
			norm += m.W[v*3+q] * m.W[v*3+q]
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("vertex %d drifted off the sphere: %v", v, norm)
		}
	}
}

func TestMaxCutSolvesEvenRing(t *testing.T) {
	const n = 10
	edges := ringGraph(n)
	task := NewMaxCut(n, 4)
	tr := &core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.3, Rho: 0.95},
		MaxEpochs: 80, Seed: 3, SkipLoss: true}
	res, err := tr.Run(edges)
	if err != nil {
		t.Fatal(err)
	}
	cut, val, err := task.RoundCut(res.Model, edges, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != n {
		t.Fatalf("cut size %d", len(cut))
	}
	// Goemans-Williamson guarantees ≥ 0.878·OPT in expectation; on a tiny
	// even ring the relaxation + rounding should find the perfect cut most
	// of the time, and certainly ≥ 0.8·OPT with 50 roundings.
	if val < 0.8*float64(n) {
		t.Fatalf("cut value %v < 0.8·OPT (%d)", val, n)
	}
}

func TestCutValueCountsCrossingEdges(t *testing.T) {
	edges := ringGraph(4)
	val, err := CutValue([]int8{1, -1, 1, -1}, edges)
	if err != nil {
		t.Fatal(err)
	}
	if val != 4 {
		t.Fatalf("alternating cut on 4-ring = %v, want 4", val)
	}
	val, err = CutValue([]int8{1, 1, 1, 1}, edges)
	if err != nil {
		t.Fatal(err)
	}
	if val != 0 {
		t.Fatalf("trivial cut = %v, want 0", val)
	}
}
