package tasks

import (
	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// Kalman fits noisy time-series data with the quadratic smoothing objective
// of Figure 1:
//
//	min_{w_1..w_T} Σ_t ‖C·w_t − y_t‖² + ρ‖w_t − A·w_{t−1}‖²
//
// Each tuple is one time step (t, y_t); the model stacks the T state
// vectors. With C = A = I (the default) this is a random-walk smoother; the
// coupling term touches the neighbouring state, which makes Kalman the one
// task whose per-tuple gradient spans two model blocks.
type Kalman struct {
	T, D int     // number of time steps, state dimension
	Rho  float64 // smoothness weight (defaults to 1 when 0)
}

// NewKalman returns a Kalman fitting task for a series of T steps of
// dimension d.
func NewKalman(T, d int) *Kalman { return &Kalman{T: T, D: d, Rho: 1} }

// Name implements core.Task.
func (t *Kalman) Name() string { return "KALMAN" }

// Dim implements core.Task.
func (t *Kalman) Dim() int { return t.T * t.D }

// Step implements core.Task.
func (t *Kalman) Step(m core.Model, e engine.Tuple, alpha float64) {
	step := int(e[0].Int)
	y := e[1].Dense
	off := step * t.D
	// The tuple's own objective terms are ‖w_t − y_t‖² plus, for t > 0, the
	// backward coupling ρ‖w_t − w_{t−1}‖² (each coupling term belongs to
	// exactly one tuple so the per-tuple gradients sum to the full one).
	for q := 0; q < t.D; q++ {
		wq := m.Get(off + q)
		g := 2 * (wq - y[q]) // observation term
		if step > 0 {
			prev := m.Get(off - t.D + q)
			g += 2 * t.Rho * (wq - prev)
			m.Add(off-t.D+q, -alpha*2*t.Rho*(prev-wq))
		}
		m.Add(off+q, -alpha*g)
	}
}

// Loss implements core.Task: the observation error plus the forward
// coupling term of this step.
func (t *Kalman) Loss(w vector.Dense, e engine.Tuple) float64 {
	step := int(e[0].Int)
	y := e[1].Dense
	off := step * t.D
	var l float64
	for q := 0; q < t.D; q++ {
		d := w[off+q] - y[q]
		l += d * d
		if step > 0 {
			c := w[off+q] - w[off-t.D+q]
			l += t.Rho * c * c
		}
	}
	return l
}

// State returns the fitted state vector at the given time step.
func (t *Kalman) State(w vector.Dense, step int) vector.Dense {
	off := step * t.D
	return w[off : off+t.D].Clone()
}
