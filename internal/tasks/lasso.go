package tasks

import (
	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// Lasso is L1-regularized least squares:
//
//	min_w ½ Σ_i (wᵀx_i − y_i)² + µ‖w‖₁
//
// the sparsity-inducing regression of Tibshirani cited in the paper's
// related work. The non-smooth penalty is handled exactly as Appendix A
// prescribes: a gradient step on the smooth part followed by the proximal
// operator of µ‖·‖₁ (soft thresholding) on the touched coordinates.
type Lasso struct {
	D  int
	Mu float64
}

// NewLasso returns a lasso task over d features.
func NewLasso(d int, mu float64) *Lasso { return &Lasso{D: d, Mu: mu} }

// Name implements core.Task.
func (t *Lasso) Name() string { return "LASSO" }

// Dim implements core.Task.
func (t *Lasso) Dim() int { return t.D }

// Step implements core.Task: a fused gradient step on the smooth part, then
// soft-thresholding of the touched coordinates.
func (t *Lasso) Step(m core.Model, e engine.Tuple, alpha float64) {
	x, y := e[ColVec], e[ColLabel].Float
	fusedStep(m, x, func(wx float64) float64 { return -alpha * (wx - y) })
	t.proxTouched(m, x, alpha*t.Mu)
}

// proxTouched applies soft thresholding only to the coordinates the example
// touches, keeping the step cost proportional to its nonzeros.
func (t *Lasso) proxTouched(m core.Model, v engine.Value, amu float64) {
	if amu <= 0 {
		return
	}
	shrink := func(i int) {
		w := m.Get(i)
		switch {
		case w > amu:
			m.Add(i, -amu)
		case w < -amu:
			m.Add(i, amu)
		default:
			m.Add(i, -w)
		}
	}
	d := m.Dim()
	if v.Type == engine.TSparseVec {
		for _, i := range v.Sparse.Idx {
			if int(i) < d {
				shrink(int(i))
			}
		}
		return
	}
	for i := range v.Dense {
		if i >= d {
			break
		}
		shrink(i)
	}
}

// Loss implements core.Task: the squared error of one example (the L1
// penalty is reported once per evaluation via RegPenalty).
func (t *Lasso) Loss(w vector.Dense, e engine.Tuple) float64 {
	r := dotFeatures(w, e[ColVec]) - e[ColLabel].Float
	return 0.5 * r * r
}

// RegPenalty implements core.Regularized.
func (t *Lasso) RegPenalty(w vector.Dense) float64 {
	if t.Mu == 0 {
		return 0
	}
	return t.Mu * w.Norm1()
}

// NNZ reports the number of (effectively) nonzero model coefficients, the
// quantity lasso exists to minimize.
func (t *Lasso) NNZ(w vector.Dense, eps float64) int {
	n := 0
	for _, x := range w {
		if x > eps || x < -eps {
			n++
		}
	}
	return n
}
