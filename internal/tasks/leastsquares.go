package tasks

import (
	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// LeastSquares fits min_w ½ Σ_i (wᵀx_i − y_i)², the model behind the
// paper's 1-D CA-TX analysis (Examples 2.1 and 3.1, Appendix C).
type LeastSquares struct {
	D int
}

// NewLeastSquares returns a least-squares task over d features.
func NewLeastSquares(d int) *LeastSquares { return &LeastSquares{D: d} }

// Name implements core.Task.
func (t *LeastSquares) Name() string { return "LSQ" }

// Dim implements core.Task.
func (t *LeastSquares) Dim() int { return t.D }

// Step implements core.Task: w ← w − α(wᵀx − y)x, fused.
func (t *LeastSquares) Step(m core.Model, e engine.Tuple, alpha float64) {
	x, y := e[ColVec], e[ColLabel].Float
	fusedStep(m, x, func(wx float64) float64 { return -alpha * (wx - y) })
}

// Loss implements core.Task: ½(wᵀx − y)².
func (t *LeastSquares) Loss(w vector.Dense, e engine.Tuple) float64 {
	r := dotFeatures(w, e[ColVec]) - e[ColLabel].Float
	return 0.5 * r * r
}
