package tasks

import (
	"math/rand"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// LMF is low-rank matrix factorization for recommendation:
//
//	min_{L,R} Σ_{(i,j)∈Ω} (L_iᵀR_j − M_ij)² + (µ/2)‖L,R‖²_F
//
// where M is observed only on the sparse sample Ω (the ratings). The model
// is the flattened factor pair: L is Rows×Rank followed by R as Cols×Rank.
// As the paper notes, this objective is not convex, but IGD still solves it
// well in practice (Gemulla et al.).
type LMF struct {
	Rows, Cols, Rank int
	Mu               float64
	InitScale        float64 // stddev-ish scale of the random init, default 0.1
}

// NewLMF returns a factorization task for an m×n matrix at the given rank.
func NewLMF(rows, cols, rank int) *LMF {
	return &LMF{Rows: rows, Cols: cols, Rank: rank, InitScale: 0.1}
}

// Name implements core.Task.
func (t *LMF) Name() string { return "LMF" }

// Dim implements core.Task.
func (t *LMF) Dim() int { return (t.Rows + t.Cols) * t.Rank }

// lOff and rOff locate the factor vectors inside the flattened model.
func (t *LMF) lOff(i int) int { return i * t.Rank }
func (t *LMF) rOff(j int) int { return (t.Rows + j) * t.Rank }

// InitModel implements core.Initializer: small random factors, since a zero
// start is a saddle point of the factorization objective.
func (t *LMF) InitModel(seed int64) vector.Dense {
	rng := rand.New(rand.NewSource(seed))
	scale := t.InitScale
	if scale == 0 {
		scale = 0.1
	}
	w := vector.NewDense(t.Dim())
	for i := range w {
		w[i] = scale * rng.NormFloat64()
	}
	return w
}

// Step implements core.Task: the biased SGD update of both touched factors.
func (t *LMF) Step(m core.Model, e engine.Tuple, alpha float64) {
	i, j, v := int(e[0].Int), int(e[1].Int), e[2].Float
	lo, ro := t.lOff(i), t.rOff(j)
	k := t.Rank
	// err = L_i·R_j − M_ij
	var pred float64
	if dm, ok := m.(*core.DenseModel); ok {
		l, r := dm.W[lo:lo+k], dm.W[ro:ro+k]
		for q := 0; q < k; q++ {
			pred += l[q] * r[q]
		}
		g := 2 * (pred - v) // d/dpred of (pred − M_ij)²
		for q := 0; q < k; q++ {
			lq, rq := l[q], r[q]
			l[q] -= alpha * (g*rq + t.Mu*lq)
			r[q] -= alpha * (g*lq + t.Mu*rq)
		}
		return
	}
	lv := make([]float64, k)
	rv := make([]float64, k)
	for q := 0; q < k; q++ {
		lv[q], rv[q] = m.Get(lo+q), m.Get(ro+q)
		pred += lv[q] * rv[q]
	}
	g := 2 * (pred - v)
	for q := 0; q < k; q++ {
		m.Add(lo+q, -alpha*(g*rv[q]+t.Mu*lv[q]))
		m.Add(ro+q, -alpha*(g*lv[q]+t.Mu*rv[q]))
	}
}

// Loss implements core.Task: squared reconstruction error of one cell.
func (t *LMF) Loss(w vector.Dense, e engine.Tuple) float64 {
	i, j, v := int(e[0].Int), int(e[1].Int), e[2].Float
	lo, ro := t.lOff(i), t.rOff(j)
	var pred float64
	for q := 0; q < t.Rank; q++ {
		pred += w[lo+q] * w[ro+q]
	}
	d := pred - v
	return d * d
}

// RegPenalty implements core.Regularized.
func (t *LMF) RegPenalty(w vector.Dense) float64 {
	if t.Mu == 0 {
		return 0
	}
	n := w.Norm2()
	return 0.5 * t.Mu * n * n
}

// Predict returns the reconstructed value of cell (i, j) under model w.
func (t *LMF) Predict(w vector.Dense, i, j int) float64 {
	lo, ro := t.lOff(i), t.rOff(j)
	var pred float64
	for q := 0; q < t.Rank; q++ {
		pred += w[lo+q] * w[ro+q]
	}
	return pred
}
