package tasks

import (
	"math"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// LR is L2-regularized logistic regression:
//
//	min_w Σ_i log(1 + exp(−y_i·wᵀx_i)) + (µ/2)‖w‖²
//
// The transition step is the paper's Figure 4 LR snippet: compute wᵀx, the
// sigmoid of the margin, and Scale_And_Add the example into the model.
type LR struct {
	D  int     // feature dimension
	Mu float64 // L2 regularization strength (0 disables)
}

// NewLR returns a logistic regression task over d features.
func NewLR(d int) *LR { return &LR{D: d} }

// Name implements core.Task.
func (t *LR) Name() string { return "LR" }

// Dim implements core.Task.
func (t *LR) Dim() int { return t.D }

// Step implements core.Task: one incremental gradient step on example e,
// via the fused dot-gain-axpy kernel (the margin is read before the
// regularizer shrinks the touched coordinates, as in Figure 4).
func (t *LR) Step(m core.Model, e engine.Tuple, alpha float64) {
	x, y := e[ColVec], e[ColLabel].Float
	mu := t.Mu
	fusedStep(m, x, func(wx float64) float64 {
		if mu > 0 {
			shrinkTouched(m, x, alpha*mu)
		}
		return alpha * y * sigmoid(-wx*y)
	})
}

// Loss implements core.Task: the logistic loss of one example.
func (t *LR) Loss(w vector.Dense, e engine.Tuple) float64 {
	wx := dotFeatures(w, e[ColVec])
	z := -e[ColLabel].Float * wx
	// log(1+e^z) computed stably.
	if z > 30 {
		return z
	}
	return math.Log1p(math.Exp(z))
}

// RegPenalty implements core.Regularized.
func (t *LR) RegPenalty(w vector.Dense) float64 {
	if t.Mu == 0 {
		return 0
	}
	n := w.Norm2()
	return 0.5 * t.Mu * n * n
}

// Predict returns the probability that the example with features x is in
// the positive class under model w.
func (t *LR) Predict(w vector.Dense, x engine.Value) float64 {
	return sigmoid(dotFeatures(w, x))
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
