package tasks

import (
	"math"
	"math/rand"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// MaxCut implements the paper's §5 future-work item — "handle large-scale
// combinatorial optimization problems inside the RDBMS, including ...
// fundamental NP-hard problems like MAX-CUT" — via the low-rank
// (Burer–Monteiro) relaxation of the Goemans–Williamson SDP:
//
//	max Σ_{(i,j)∈E} w_ij (1 − v_iᵀv_j)/2   s.t. ‖v_i‖ = 1
//
// Each edge is one tuple (i, j, weight); the model stacks one R^k vector
// per vertex; a gradient step on an edge pushes its endpoints apart
// followed by the unit-sphere projection (the Appendix A proximal step).
// RoundCut recovers a ±1 cut by random-hyperplane rounding.
//
// EdgeSchema reuses RatingSchema: (row=i, col=j, rating=weight).
type MaxCut struct {
	N, K int // number of vertices, relaxation rank
}

// NewMaxCut returns a MAX-CUT relaxation over n vertices at rank k.
func NewMaxCut(n, k int) *MaxCut { return &MaxCut{N: n, K: k} }

// Name implements core.Task.
func (t *MaxCut) Name() string { return "MAXCUT" }

// Dim implements core.Task.
func (t *MaxCut) Dim() int { return t.N * t.K }

// InitModel implements core.Initializer: random unit vectors per vertex.
func (t *MaxCut) InitModel(seed int64) vector.Dense {
	rng := rand.New(rand.NewSource(seed))
	w := vector.NewDense(t.Dim())
	for v := 0; v < t.N; v++ {
		var norm float64
		off := v * t.K
		for q := 0; q < t.K; q++ {
			w[off+q] = rng.NormFloat64()
			norm += w[off+q] * w[off+q]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			w[off] = 1
			continue
		}
		for q := 0; q < t.K; q++ {
			w[off+q] /= norm
		}
	}
	return w
}

// Step implements core.Task: minimize w_ij·v_iᵀv_j (equivalently maximize
// the cut), then renormalize both endpoint vectors.
func (t *MaxCut) Step(m core.Model, e engine.Tuple, alpha float64) {
	i, j, wt := int(e[0].Int), int(e[1].Int), e[2].Float
	oi, oj := i*t.K, j*t.K
	vi := make([]float64, t.K)
	vj := make([]float64, t.K)
	for q := 0; q < t.K; q++ {
		vi[q], vj[q] = m.Get(oi+q), m.Get(oj+q)
	}
	// d/dv_i of wt·v_i·v_j = wt·v_j; descend.
	for q := 0; q < t.K; q++ {
		m.Add(oi+q, -alpha*wt*vj[q])
		m.Add(oj+q, -alpha*wt*vi[q])
	}
	t.renorm(m, i)
	t.renorm(m, j)
}

func (t *MaxCut) renorm(m core.Model, v int) {
	off := v * t.K
	var norm float64
	for q := 0; q < t.K; q++ {
		x := m.Get(off + q)
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for q := 0; q < t.K; q++ {
		x := m.Get(off + q)
		m.Add(off+q, x/norm-x)
	}
}

// Loss implements core.Task: the edge's contribution to the NEGATED cut,
// wt·(1 + v_iᵀv_j)/2 — lower is a larger cut, so the shared minimizing
// trainer machinery applies unchanged.
func (t *MaxCut) Loss(w vector.Dense, e engine.Tuple) float64 {
	i, j, wt := int(e[0].Int), int(e[1].Int), e[2].Float
	oi, oj := i*t.K, j*t.K
	var dot float64
	for q := 0; q < t.K; q++ {
		dot += w[oi+q] * w[oj+q]
	}
	return wt * (1 + dot) / 2
}

// RoundCut converts the relaxed solution into a ±1 assignment by random
// hyperplane rounding, returning the best of `trials` roundings evaluated
// against the edge table.
func (t *MaxCut) RoundCut(w vector.Dense, edges *engine.Table, trials int, seed int64) ([]int8, float64, error) {
	rng := rand.New(rand.NewSource(seed))
	var bestCut []int8
	bestVal := math.Inf(-1)
	for trial := 0; trial < trials; trial++ {
		r := make([]float64, t.K)
		for q := range r {
			r[q] = rng.NormFloat64()
		}
		cut := make([]int8, t.N)
		for v := 0; v < t.N; v++ {
			var s float64
			off := v * t.K
			for q := 0; q < t.K; q++ {
				s += w[off+q] * r[q]
			}
			if s >= 0 {
				cut[v] = 1
			} else {
				cut[v] = -1
			}
		}
		val, err := CutValue(cut, edges)
		if err != nil {
			return nil, 0, err
		}
		if val > bestVal {
			bestVal, bestCut = val, cut
		}
	}
	return bestCut, bestVal, nil
}

// CutValue sums the weight of edges crossing the cut.
func CutValue(cut []int8, edges *engine.Table) (float64, error) {
	var val float64
	err := edges.Scan(func(tp engine.Tuple) error {
		i, j, wt := int(tp[0].Int), int(tp[1].Int), tp[2].Float
		if cut[i] != cut[j] {
			val += wt
		}
		return nil
	})
	return val, err
}
