package tasks

import (
	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// Portfolio is the constrained mean-risk optimization of Figure 1:
//
//	min_w  risk − γ·return  subject to  w ∈ ∆ (the probability simplex).
//
// The paper writes the objective with the covariance Σ and mean p of the
// returns; over sampled return observations r_i we use the separable
// second-moment form
//
//	f_i(w) = λ(wᵀr_i)² − γ·wᵀr_i
//
// whose expectation is λ·wᵀE[rrᵀ]w − γ·wᵀp, exercising the same IGD +
// per-step simplex projection code path (Eq. 3 with Π_∆).
type Portfolio struct {
	D      int     // number of assets
	Lambda float64 // risk aversion (defaults to 1 when 0)
	Gamma  float64 // return weight (defaults to 1 when 0)
}

// NewPortfolio returns a portfolio task over d assets.
func NewPortfolio(d int) *Portfolio { return &Portfolio{D: d, Lambda: 1, Gamma: 1} }

// Name implements core.Task.
func (t *Portfolio) Name() string { return "PORT" }

// Dim implements core.Task.
func (t *Portfolio) Dim() int { return t.D }

// InitModel implements core.Initializer: the uniform allocation 1/d, which
// lies in the simplex.
func (t *Portfolio) InitModel(int64) vector.Dense {
	w := vector.NewDense(t.D)
	for i := range w {
		w[i] = 1 / float64(t.D)
	}
	return w
}

// Step implements core.Task: gradient step followed by projection onto ∆.
// The projection needs the whole model, so this task requires a dense or
// locked model (it snapshots otherwise).
func (t *Portfolio) Step(m core.Model, e engine.Tuple, alpha float64) {
	r := e[1]
	fusedStep(m, r, func(wr float64) float64 {
		return -alpha * (2*t.Lambda*wr - t.Gamma)
	})
	if dm, ok := m.(*core.DenseModel); ok {
		core.ProjectSimplex(dm.W)
		return
	}
	// Generic path: project a snapshot and write it back.
	w := m.Snapshot()
	core.ProjectSimplex(w)
	for i, x := range w {
		m.Add(i, x-m.Get(i))
	}
}

// Loss implements core.Task.
func (t *Portfolio) Loss(w vector.Dense, e engine.Tuple) float64 {
	wr := dotFeatures(w, e[1])
	return t.Lambda*wr*wr - t.Gamma*wr
}
