// Package register is where every built-in task self-registers its
// constructor, canonical data layout, and tunable WITH-parameters with the
// declarative statement layer (internal/spec). It is the only coupling
// between the tasks and the statement grammar — adding a task here makes
// it reachable as `TO TRAIN <name>` with zero changes to the dispatch
// path. It lives beside internal/tasks (rather than inside it) so the
// trainer packages' tests can import tasks without dragging in the
// statement layer.
package register

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/spec"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

func itoa(v int) string     { return strconv.Itoa(v) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// binaryAgrees reports sign agreement between a thresholded score and a
// label, accepting both ±1 and 0/1 label conventions.
func binaryAgrees(s, threshold, label float64) bool {
	return (s > threshold) == (label > 0)
}

// dimOf resolves the "dim" parameter, inferring the feature width from the
// view's vec column when the statement did not pin it.
func dimOf(in spec.BuildInput, col int) (int, error) {
	if in.Params.Has("dim") && in.Params.Int("dim") > 0 {
		return in.Params.Int("dim"), nil
	}
	return spec.InferVecDim(in.View, col)
}

// evalBinary is the shared Evaluate hook of the binary classifiers:
// threshold is the statement's WITH threshold, def the task default.
func evalBinary(c tasks.BinaryClassifier, threshold, def float64) func(io.Writer, *engine.Table, vector.Dense) error {
	if math.IsNaN(threshold) {
		threshold = def
	}
	return func(out io.Writer, view *engine.Table, w vector.Dense) error {
		m, err := tasks.EvaluateBinary(c, w, view, threshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "n=%d accuracy=%.4f precision=%.4f recall=%.4f f1=%.4f\n",
			m.N, m.Accuracy, m.Precision, m.Recall, m.F1)
		return nil
	}
}

func init() {
	dimParam := spec.IntParam("dim", "feature dimension (inferred from the data when omitted)")

	// --- tasks.LR ---
	spec.Register(spec.TaskSpec{
		Name:    "lr",
		Aliases: []string{"logistic_regression", "logisticregression"},
		Summary: "L2-regularized logistic regression",
		Schema:  tasks.DenseExampleSchema,
		Params: []spec.ParamSpec{
			dimParam,
			spec.FloatDefault("mu", 0, "L2 regularization strength"),
		},
		DefaultAlpha: 0.1,
		ExtraSolvers: []string{"irls"},
		Build: func(in spec.BuildInput) (core.Task, error) {
			d, err := dimOf(in, tasks.ColVec)
			if err != nil {
				return nil, err
			}
			return &tasks.LR{D: d, Mu: in.Params.Float("mu")}, nil
		},
		Snapshot: func(t core.Task) map[string]string {
			lr := t.(*tasks.LR)
			return map[string]string{"dim": itoa(lr.D), "mu": ftoa(lr.Mu)}
		},
		Predict: func(t core.Task, w vector.Dense, tp engine.Tuple) float64 {
			return t.(*tasks.LR).Predict(w, tp[tasks.ColVec])
		},
		DefaultThreshold: 0.5,
		Agrees:           binaryAgrees,
		Evaluate: func(t core.Task, w vector.Dense, view *engine.Table, threshold float64, out io.Writer) error {
			return evalBinary(t.(*tasks.LR), threshold, 0.5)(out, view, w)
		},
	})

	// --- tasks.SVM ---
	spec.Register(spec.TaskSpec{
		Name:    "svm",
		Aliases: []string{"linear_svm"},
		Summary: "linear support vector machine (hinge loss)",
		Schema:  tasks.DenseExampleSchema,
		Params: []spec.ParamSpec{
			dimParam,
			spec.FloatDefault("mu", 0, "L2 regularization strength"),
		},
		DefaultAlpha: 0.1,
		Build: func(in spec.BuildInput) (core.Task, error) {
			d, err := dimOf(in, tasks.ColVec)
			if err != nil {
				return nil, err
			}
			return &tasks.SVM{D: d, Mu: in.Params.Float("mu")}, nil
		},
		Snapshot: func(t core.Task) map[string]string {
			s := t.(*tasks.SVM)
			return map[string]string{"dim": itoa(s.D), "mu": ftoa(s.Mu)}
		},
		Predict: func(t core.Task, w vector.Dense, tp engine.Tuple) float64 {
			return t.(*tasks.SVM).Predict(w, tp[tasks.ColVec])
		},
		Agrees: binaryAgrees,
		Evaluate: func(t core.Task, w vector.Dense, view *engine.Table, threshold float64, out io.Writer) error {
			return evalBinary(t.(*tasks.SVM), threshold, 0)(out, view, w)
		},
	})

	// --- least squares ---
	spec.Register(spec.TaskSpec{
		Name:         "lsq",
		Aliases:      []string{"leastsquares", "least_squares", "linreg"},
		Summary:      "least-squares regression (the CA-TX model)",
		Schema:       tasks.DenseExampleSchema,
		Params:       []spec.ParamSpec{dimParam},
		DefaultAlpha: 0.1,
		Build: func(in spec.BuildInput) (core.Task, error) {
			d, err := dimOf(in, tasks.ColVec)
			if err != nil {
				return nil, err
			}
			return &tasks.LeastSquares{D: d}, nil
		},
		Snapshot: func(t core.Task) map[string]string {
			return map[string]string{"dim": itoa(t.(*tasks.LeastSquares).D)}
		},
		Predict: func(_ core.Task, w vector.Dense, tp engine.Tuple) float64 {
			return tasks.DotFeatures(w, tp[tasks.ColVec])
		},
	})

	// --- lasso ---
	spec.Register(spec.TaskSpec{
		Name:    "lasso",
		Summary: "L1-regularized least squares (soft thresholding prox)",
		Schema:  tasks.DenseExampleSchema,
		Params: []spec.ParamSpec{
			dimParam,
			spec.FloatDefault("mu", 0.01, "L1 penalty strength"),
		},
		DefaultAlpha: 0.1,
		Build: func(in spec.BuildInput) (core.Task, error) {
			d, err := dimOf(in, tasks.ColVec)
			if err != nil {
				return nil, err
			}
			return tasks.NewLasso(d, in.Params.Float("mu")), nil
		},
		Snapshot: func(t core.Task) map[string]string {
			l := t.(*tasks.Lasso)
			return map[string]string{"dim": itoa(l.D), "mu": ftoa(l.Mu)}
		},
		Predict: func(_ core.Task, w vector.Dense, tp engine.Tuple) float64 {
			return tasks.DotFeatures(w, tp[tasks.ColVec])
		},
	})

	// --- softmax ---
	spec.Register(spec.TaskSpec{
		Name:    "softmax",
		Aliases: []string{"multiclass", "multinomial"},
		Summary: "multiclass (multinomial) logistic regression",
		Schema:  tasks.DenseExampleSchema,
		Params: []spec.ParamSpec{
			dimParam,
			spec.IntParam("classes", "number of classes (inferred from labels when omitted)"),
		},
		DefaultAlpha: 0.1,
		Build: func(in spec.BuildInput) (core.Task, error) {
			d, err := dimOf(in, tasks.ColVec)
			if err != nil {
				return nil, err
			}
			k := in.Params.Int("classes")
			if k == 0 {
				if k, err = spec.InferMaxInt(in.View, tasks.ColLabel); err != nil {
					return nil, err
				}
			}
			if k < 2 {
				return nil, fmt.Errorf("tasks: softmax needs >= 2 classes, got %d", k)
			}
			return tasks.NewSoftmax(d, k), nil
		},
		Snapshot: func(t core.Task) map[string]string {
			s := t.(*tasks.Softmax)
			return map[string]string{"dim": itoa(s.D), "classes": itoa(s.K)}
		},
		Predict: func(t core.Task, w vector.Dense, tp engine.Tuple) float64 {
			return float64(t.(*tasks.Softmax).Predict(w, tp[tasks.ColVec]))
		},
		Agrees: func(s, _, label float64) bool { return s == math.Round(label) },
		Evaluate: func(t core.Task, w vector.Dense, view *engine.Table, _ float64, out io.Writer) error {
			s := t.(*tasks.Softmax)
			correct, n := 0, 0
			err := view.Rows().Scan(func(tp engine.Tuple) error {
				n++
				if s.Predict(w, tp[tasks.ColVec]) == int(tp[tasks.ColLabel].Float) {
					correct++
				}
				return nil
			})
			if err != nil {
				return err
			}
			if n == 0 {
				return fmt.Errorf("tasks: evaluate on empty table")
			}
			fmt.Fprintf(out, "n=%d accuracy=%.4f\n", n, float64(correct)/float64(n))
			return nil
		},
	})

	// --- tasks.LMF ---
	spec.Register(spec.TaskSpec{
		Name:    "lmf",
		Aliases: []string{"matrix_factorization", "mf"},
		Summary: "low-rank matrix factorization for recommendation",
		Schema:  tasks.RatingSchema,
		Params: []spec.ParamSpec{
			spec.IntParam("rows", "matrix rows (inferred when omitted)"),
			spec.IntParam("cols", "matrix cols (inferred when omitted)"),
			spec.IntDefault("rank", 8, "factorization rank"),
			spec.FloatDefault("mu", 0, "Frobenius regularization"),
			spec.FloatDefault("init_scale", 0.1, "random init scale"),
		},
		DefaultAlpha: 0.02,
		ExtraSolvers: []string{"als"},
		Build: func(in spec.BuildInput) (core.Task, error) {
			rows, cols := in.Params.Int("rows"), in.Params.Int("cols")
			var err error
			if rows == 0 {
				if rows, err = spec.InferMaxInt(in.View, 0); err != nil {
					return nil, err
				}
			}
			if cols == 0 {
				if cols, err = spec.InferMaxInt(in.View, 1); err != nil {
					return nil, err
				}
			}
			t := tasks.NewLMF(rows, cols, in.Params.Int("rank"))
			t.Mu = in.Params.Float("mu")
			t.InitScale = in.Params.Float("init_scale")
			return t, nil
		},
		Snapshot: func(t core.Task) map[string]string {
			l := t.(*tasks.LMF)
			return map[string]string{"rows": itoa(l.Rows), "cols": itoa(l.Cols),
				"rank": itoa(l.Rank), "mu": ftoa(l.Mu), "init_scale": ftoa(l.InitScale)}
		},
		Predict: func(t core.Task, w vector.Dense, tp engine.Tuple) float64 {
			l := t.(*tasks.LMF)
			i, j := int(tp[0].Int), int(tp[1].Int)
			if i < 0 || i >= l.Rows || j < 0 || j >= l.Cols {
				return math.NaN() // cell outside the trained matrix
			}
			return l.Predict(w, i, j)
		},
		Evaluate: func(t core.Task, w vector.Dense, view *engine.Table, _ float64, out io.Writer) error {
			rmse, err := t.(*tasks.LMF).RMSE(w, view)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "n=%d rmse=%.4f\n", view.NumRows(), rmse)
			return nil
		},
	})

	// --- tasks.CRF ---
	spec.Register(spec.TaskSpec{
		Name:    "crf",
		Aliases: []string{"chain_crf"},
		Summary: "linear-chain conditional random field",
		Schema:  tasks.SeqSchema,
		Params: []spec.ParamSpec{
			spec.IntParam("features", "observation feature count (inferred when omitted)"),
			spec.IntParam("labels", "tag count (inferred when omitted)"),
		},
		DefaultAlpha: 0.1,
		Build: func(in spec.BuildInput) (core.Task, error) {
			f, l := in.Params.Int("features"), in.Params.Int("labels")
			var err error
			if f == 0 {
				if f, err = spec.InferMaxInt32(in.View, 2); err != nil {
					return nil, err
				}
			}
			if l == 0 {
				if l, err = spec.InferMaxInt32(in.View, 3); err != nil {
					return nil, err
				}
			}
			return tasks.NewCRF(f, l), nil
		},
		Snapshot: func(t core.Task) map[string]string {
			c := t.(*tasks.CRF)
			return map[string]string{"features": itoa(c.F), "labels": itoa(c.L)}
		},
		Evaluate: func(t core.Task, w vector.Dense, view *engine.Table, _ float64, out io.Writer) error {
			correct, total, err := t.(*tasks.CRF).TokenAccuracy(w, view)
			if err != nil {
				return err
			}
			if total == 0 {
				return fmt.Errorf("tasks: evaluate on empty table")
			}
			fmt.Fprintf(out, "tokens=%d accuracy=%.4f\n", total, float64(correct)/float64(total))
			return nil
		},
	})

	// --- tasks.Kalman ---
	spec.Register(spec.TaskSpec{
		Name:    "kalman",
		Aliases: []string{"smoother"},
		Summary: "Kalman-style time-series smoothing",
		Schema:  tasks.SeriesSchema,
		Params: []spec.ParamSpec{
			spec.IntParam("steps", "series length (inferred when omitted)"),
			spec.IntParam("dim", "state dimension (inferred when omitted)"),
			spec.FloatDefault("rho", 1, "smoothness weight"),
		},
		DefaultAlpha: 0.1,
		Build: func(in spec.BuildInput) (core.Task, error) {
			T, d := in.Params.Int("steps"), in.Params.Int("dim")
			var err error
			if T == 0 {
				if T, err = spec.InferMaxInt(in.View, 0); err != nil {
					return nil, err
				}
			}
			if d == 0 {
				if d, err = spec.InferVecDim(in.View, 1); err != nil {
					return nil, err
				}
			}
			t := tasks.NewKalman(T, d)
			t.Rho = in.Params.Float("rho")
			return t, nil
		},
		Snapshot: func(t core.Task) map[string]string {
			k := t.(*tasks.Kalman)
			return map[string]string{"steps": itoa(k.T), "dim": itoa(k.D), "rho": ftoa(k.Rho)}
		},
	})

	// --- tasks.Portfolio ---
	spec.Register(spec.TaskSpec{
		Name:    "portfolio",
		Aliases: []string{"port"},
		Summary: "simplex-constrained mean-risk portfolio optimization",
		Schema:  tasks.ReturnSchema,
		Params: []spec.ParamSpec{
			spec.IntParam("assets", "number of assets (inferred when omitted)"),
			spec.FloatDefault("lambda", 1, "risk aversion"),
			spec.FloatDefault("gamma", 1, "return weight"),
		},
		DefaultAlpha: 0.05,
		Build: func(in spec.BuildInput) (core.Task, error) {
			d := in.Params.Int("assets")
			var err error
			if d == 0 {
				if d, err = spec.InferVecDim(in.View, 1); err != nil {
					return nil, err
				}
			}
			t := tasks.NewPortfolio(d)
			t.Lambda = in.Params.Float("lambda")
			t.Gamma = in.Params.Float("gamma")
			return t, nil
		},
		Snapshot: func(t core.Task) map[string]string {
			p := t.(*tasks.Portfolio)
			return map[string]string{"assets": itoa(p.D), "lambda": ftoa(p.Lambda), "gamma": ftoa(p.Gamma)}
		},
	})

	// --- MAX-CUT ---
	spec.Register(spec.TaskSpec{
		Name:    "maxcut",
		Aliases: []string{"max_cut"},
		Summary: "low-rank MAX-CUT relaxation over an edge table",
		Schema:  tasks.RatingSchema, // (row=i, col=j, rating=weight) edges
		Params: []spec.ParamSpec{
			spec.IntParam("nodes", "vertex count (inferred when omitted)"),
			spec.IntDefault("rank", 8, "relaxation rank"),
		},
		DefaultAlpha: 0.05,
		Build: func(in spec.BuildInput) (core.Task, error) {
			n := in.Params.Int("nodes")
			if n == 0 {
				n1, err := spec.InferMaxInt(in.View, 0)
				if err != nil {
					return nil, err
				}
				n2, err := spec.InferMaxInt(in.View, 1)
				if err != nil {
					return nil, err
				}
				n = n1
				if n2 > n {
					n = n2
				}
			}
			return tasks.NewMaxCut(n, in.Params.Int("rank")), nil
		},
		Snapshot: func(t core.Task) map[string]string {
			m := t.(*tasks.MaxCut)
			return map[string]string{"nodes": itoa(m.N), "rank": itoa(m.K)}
		},
		Evaluate: func(t core.Task, w vector.Dense, view *engine.Table, _ float64, out io.Writer) error {
			m := t.(*tasks.MaxCut)
			_, val, err := m.RoundCut(w, view, 32, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "edges=%d rounded_cut_value=%.4f\n", view.NumRows(), val)
			return nil
		},
	})
}
