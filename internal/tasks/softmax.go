package tasks

import (
	"math"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// Softmax is multinomial (multiclass) logistic regression:
//
//	min_W Σ_i [ log Σ_c exp(w_cᵀx_i) − w_{y_i}ᵀx_i ]
//
// over K classes; the flattened model stores the K class vectors
// consecutively (w_c at offset c·D). The label column holds the class index
// as a float. This is one of the "more sophisticated models" the paper's
// §5 points to — it drops into the same architecture unchanged.
type Softmax struct {
	D, K int
}

// NewSoftmax returns a K-class softmax regression over d features.
func NewSoftmax(d, k int) *Softmax { return &Softmax{D: d, K: k} }

// Name implements core.Task.
func (t *Softmax) Name() string { return "SOFTMAX" }

// Dim implements core.Task.
func (t *Softmax) Dim() int { return t.D * t.K }

// classDot computes w_cᵀx through the model.
func (t *Softmax) classDot(m core.Model, v engine.Value, c int) float64 {
	off := c * t.D
	var s float64
	if v.Type == engine.TSparseVec {
		for k, i := range v.Sparse.Idx {
			if int(i) < t.D {
				s += m.Get(off+int(i)) * v.Sparse.Val[k]
			}
		}
		return s
	}
	for i, x := range v.Dense {
		if i >= t.D {
			break
		}
		s += m.Get(off+i) * x
	}
	return s
}

// axpyClass performs w_c += cst·x through the model.
func (t *Softmax) axpyClass(m core.Model, v engine.Value, c int, cst float64) {
	off := c * t.D
	if v.Type == engine.TSparseVec {
		for k, i := range v.Sparse.Idx {
			if int(i) < t.D {
				m.Add(off+int(i), cst*v.Sparse.Val[k])
			}
		}
		return
	}
	for i, x := range v.Dense {
		if i >= t.D {
			break
		}
		m.Add(off+i, cst*x)
	}
}

// probs returns the class probabilities for the example under the model.
func (t *Softmax) probs(m core.Model, v engine.Value) []float64 {
	z := make([]float64, t.K)
	mx := math.Inf(-1)
	for c := 0; c < t.K; c++ {
		z[c] = t.classDot(m, v, c)
		if z[c] > mx {
			mx = z[c]
		}
	}
	var sum float64
	for c := range z {
		z[c] = math.Exp(z[c] - mx)
		sum += z[c]
	}
	for c := range z {
		z[c] /= sum
	}
	return z
}

// Step implements core.Task: w_c += α(1{c=y} − p_c)·x for every class.
func (t *Softmax) Step(m core.Model, e engine.Tuple, alpha float64) {
	x, y := e[ColVec], int(e[ColLabel].Float)
	p := t.probs(m, x)
	for c := 0; c < t.K; c++ {
		g := -p[c]
		if c == y {
			g++
		}
		if g != 0 {
			t.axpyClass(m, x, c, alpha*g)
		}
	}
}

// Loss implements core.Task: the example's cross-entropy.
func (t *Softmax) Loss(w vector.Dense, e engine.Tuple) float64 {
	x, y := e[ColVec], int(e[ColLabel].Float)
	z := make([]float64, t.K)
	for c := 0; c < t.K; c++ {
		off := c * t.D
		if x.Type == engine.TSparseVec {
			for k, i := range x.Sparse.Idx {
				if int(i) < t.D {
					z[c] += w[off+int(i)] * x.Sparse.Val[k]
				}
			}
		} else {
			for i, v := range x.Dense {
				if i >= t.D {
					break
				}
				z[c] += w[off+i] * v
			}
		}
	}
	return logSumExp(z) - z[y]
}

// Predict returns the most probable class for the example under model w.
func (t *Softmax) Predict(w vector.Dense, x engine.Value) int {
	best, arg := math.Inf(-1), 0
	for c := 0; c < t.K; c++ {
		off := c * t.D
		var s float64
		if x.Type == engine.TSparseVec {
			for k, i := range x.Sparse.Idx {
				if int(i) < t.D {
					s += w[off+int(i)] * x.Sparse.Val[k]
				}
			}
		} else {
			for i, v := range x.Dense {
				if i >= t.D {
					break
				}
				s += w[off+i] * v
			}
		}
		if s > best {
			best, arg = s, c
		}
	}
	return arg
}
