package tasks

import (
	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// SVM is a linear support vector machine trained on the hinge loss:
//
//	min_w Σ_i (1 − y_i·wᵀx_i)₊ + (µ/2)‖w‖²
//
// Note how little it differs from LR (the paper's Figure 4): the step only
// fires when the example violates the margin.
type SVM struct {
	D  int     // feature dimension
	Mu float64 // L2 regularization strength (0 disables)
}

// NewSVM returns a linear SVM task over d features.
func NewSVM(d int) *SVM { return &SVM{D: d} }

// Name implements core.Task.
func (t *SVM) Name() string { return "SVM" }

// Dim implements core.Task.
func (t *SVM) Dim() int { return t.D }

// Step implements core.Task, via the fused dot-gain-axpy kernel: an example
// inside the margin returns a zero coefficient and costs only the dot
// product (plus shrinkage when regularized).
func (t *SVM) Step(m core.Model, e engine.Tuple, alpha float64) {
	x, y := e[ColVec], e[ColLabel].Float
	mu := t.Mu
	fusedStep(m, x, func(wx float64) float64 {
		if mu > 0 {
			shrinkTouched(m, x, alpha*mu)
		}
		if 1-wx*y > 0 {
			return alpha * y
		}
		return 0
	})
}

// Loss implements core.Task: the hinge loss of one example.
func (t *SVM) Loss(w vector.Dense, e engine.Tuple) float64 {
	wx := dotFeatures(w, e[ColVec])
	if l := 1 - e[ColLabel].Float*wx; l > 0 {
		return l
	}
	return 0
}

// RegPenalty implements core.Regularized.
func (t *SVM) RegPenalty(w vector.Dense) float64 {
	if t.Mu == 0 {
		return 0
	}
	n := w.Norm2()
	return 0.5 * t.Mu * n * n
}

// Predict returns the signed margin wᵀx; its sign is the predicted class.
func (t *SVM) Predict(w vector.Dense, x engine.Value) float64 {
	return dotFeatures(w, x)
}
