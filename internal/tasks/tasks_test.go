package tasks

import (
	"math"
	"math/rand"
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// fdCheck verifies that Step moves the model by −α·∇Loss(w, tuple) by
// comparing against central finite differences of Loss. Tasks that do extra
// per-step work (projection, regularization) must be configured to disable
// it for this check.
func fdCheck(t *testing.T, task core.Task, tp engine.Tuple, w vector.Dense, tol float64) {
	t.Helper()
	const alpha = 1e-6
	before := w.Clone()
	task.Step(&core.DenseModel{W: w}, tp, alpha)
	stepDelta := vector.NewDense(len(w))
	for i := range w {
		stepDelta[i] = (w[i] - before[i]) / alpha // = −grad_i
	}
	const h = 1e-5
	for i := range before {
		wp := before.Clone()
		wm := before.Clone()
		wp[i] += h
		wm[i] -= h
		grad := (task.Loss(wp, tp) - task.Loss(wm, tp)) / (2 * h)
		if d := math.Abs(-grad - stepDelta[i]); d > tol*(1+math.Abs(grad)) {
			t.Fatalf("%s: grad mismatch at %d: fd=%.6g step=%.6g", task.Name(), i, -grad, stepDelta[i])
		}
	}
}

func randDense(rng *rand.Rand, d int) vector.Dense {
	w := vector.NewDense(d)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

func TestLRGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	task := NewLR(5)
	tp := engine.Tuple{engine.I64(0), engine.DenseV(randDense(rng, 5)), engine.F64(1)}
	fdCheck(t, task, tp, randDense(rng, 5), 1e-4)
	tpNeg := engine.Tuple{engine.I64(0), engine.DenseV(randDense(rng, 5)), engine.F64(-1)}
	fdCheck(t, task, tpNeg, randDense(rng, 5), 1e-4)
}

func TestLRGradientSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	task := NewLR(8)
	x := vector.NewSparse([]int32{1, 4, 6}, []float64{0.5, -1.2, 2.0})
	tp := engine.Tuple{engine.I64(0), engine.SparseV(x), engine.F64(-1)}
	fdCheck(t, task, tp, randDense(rng, 8), 1e-4)
}

func TestSVMGradientBothSidesOfMargin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	task := NewSVM(4)
	x := randDense(rng, 4)
	tp := engine.Tuple{engine.I64(0), engine.DenseV(x), engine.F64(1)}
	// Violating w (margin < 1): start from a scaled-negative w.
	w := x.Clone()
	w.Scale(-1)
	fdCheck(t, task, tp, w, 1e-4)
	// Satisfying w (margin > 1): hinge is flat, step must be zero.
	w2 := x.Clone()
	w2.Scale(2 / vector.Dot(x, x))
	before := w2.Clone()
	task.Step(&core.DenseModel{W: w2}, tp, 0.1)
	if vector.Dist2(before, w2) != 0 {
		t.Fatal("SVM stepped on a margin-satisfying example")
	}
}

func TestLeastSquaresGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	task := NewLeastSquares(3)
	tp := engine.Tuple{engine.I64(0), engine.DenseV(randDense(rng, 3)), engine.F64(0.7)}
	fdCheck(t, task, tp, randDense(rng, 3), 1e-4)
}

func TestLMFGradient(t *testing.T) {
	task := NewLMF(3, 4, 2)
	rng := rand.New(rand.NewSource(5))
	tp := engine.Tuple{engine.I64(1), engine.I64(2), engine.F64(3.5)}
	fdCheck(t, task, tp, randDense(rng, task.Dim()), 1e-3)
}

func TestLMFGenericModelPathMatchesDense(t *testing.T) {
	task := NewLMF(3, 4, 2)
	rng := rand.New(rand.NewSource(6))
	w := randDense(rng, task.Dim())
	tp := engine.Tuple{engine.I64(2), engine.I64(0), engine.F64(-1.5)}
	dense := &core.DenseModel{W: w.Clone()}
	locked := core.NewLockedModel(task.Dim())
	for i := range w {
		locked.W[i] = w[i]
	}
	task.Step(dense, tp, 0.01)
	task.Step(locked, tp, 0.01)
	if d := vector.Dist2(dense.W, locked.Snapshot()); d > 1e-12 {
		t.Fatalf("generic path diverges from dense path by %g", d)
	}
}

func TestKalmanGradient(t *testing.T) {
	task := NewKalman(4, 2)
	rng := rand.New(rand.NewSource(7))
	for _, step := range []int{0, 2, 3} {
		tp := engine.Tuple{engine.I64(int64(step)), engine.DenseV(randDense(rng, 2))}
		fdCheck(t, task, tp, randDense(rng, task.Dim()), 1e-3)
	}
}

func TestPortfolioStepStaysOnSimplex(t *testing.T) {
	task := NewPortfolio(6)
	rng := rand.New(rand.NewSource(8))
	w := task.InitModel(0)
	m := &core.DenseModel{W: w}
	for i := 0; i < 50; i++ {
		tp := engine.Tuple{engine.I64(int64(i)), engine.DenseV(randDense(rng, 6))}
		task.Step(m, tp, 0.05)
		var sum float64
		for _, x := range m.W {
			if x < -1e-12 {
				t.Fatalf("negative weight %g after step %d", x, i)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %g after step %d", sum, i)
		}
	}
}

func TestPortfolioGenericModelProjection(t *testing.T) {
	task := NewPortfolio(4)
	lm := core.NewLockedModel(4)
	for i := 0; i < 4; i++ {
		lm.W[i] = 0.25
	}
	rng := rand.New(rand.NewSource(9))
	tp := engine.Tuple{engine.I64(0), engine.DenseV(randDense(rng, 4))}
	task.Step(lm, tp, 0.1)
	w := lm.Snapshot()
	var sum float64
	for _, x := range w {
		if x < -1e-12 {
			t.Fatalf("negative weight %g", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", sum)
	}
}

// --- CRF ---

// tinySeq builds a 3-token sequence over 4 features with given labels.
func tinySeq(labels []int32) engine.Tuple {
	offsets := []int32{0, 2, 3, 5}
	feats := []int32{0, 1, 2, 1, 3}
	return engine.Tuple{engine.I64(0), engine.IntsV(offsets), engine.IntsV(feats), engine.IntsV(labels)}
}

// bruteLogZ enumerates all label sequences to compute log Z exactly.
func bruteLogZ(t *CRF, w vector.Dense, tp engine.Tuple) float64 {
	s := decodeSeq(tp)
	T, L := s.T(), t.L
	var scores []float64
	var rec func(tt int, prev int, acc float64)
	rec = func(tt int, prev int, acc float64) {
		if tt == T {
			scores = append(scores, acc)
			return
		}
		for y := 0; y < L; y++ {
			sc := acc
			for _, f := range s.tokenFeats(tt) {
				sc += w[t.emOff(int(f), y)]
			}
			if tt > 0 {
				sc += w[t.trOff(prev, y)]
			}
			rec(tt+1, y, sc)
		}
	}
	rec(0, -1, 0)
	return logSumExp(scores)
}

func TestCRFLogZMatchesBruteForce(t *testing.T) {
	task := NewCRF(4, 3)
	rng := rand.New(rand.NewSource(10))
	w := randDense(rng, task.Dim())
	tp := tinySeq([]int32{0, 2, 1})
	r := reader{w: w}
	logZ, _, _, _ := task.inference(r, decodeSeq(tp))
	want := bruteLogZ(task, w, tp)
	if math.Abs(logZ-want) > 1e-9 {
		t.Fatalf("logZ = %.9f, brute force = %.9f", logZ, want)
	}
}

func TestCRFLossNonNegative(t *testing.T) {
	task := NewCRF(4, 3)
	rng := rand.New(rand.NewSource(11))
	w := randDense(rng, task.Dim())
	for y0 := int32(0); y0 < 3; y0++ {
		tp := tinySeq([]int32{y0, 1, 2})
		if l := task.Loss(w, tp); l < -1e-9 {
			t.Fatalf("negative NLL %g", l)
		}
	}
}

func TestCRFGradient(t *testing.T) {
	task := NewCRF(4, 2)
	rng := rand.New(rand.NewSource(12))
	w := randDense(rng, task.Dim())
	w.Scale(0.3)
	tp := tinySeq([]int32{0, 1, 0})
	fdCheck(t, task, tp, w, 1e-3)
}

func TestCRFViterbiMatchesBruteForce(t *testing.T) {
	task := NewCRF(4, 3)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		w := randDense(rng, task.Dim())
		tp := tinySeq([]int32{0, 0, 0})
		got := task.Decode(w, tp)
		// Brute force best sequence.
		s := decodeSeq(tp)
		best := math.Inf(-1)
		var bestSeq []int32
		var rec func(tt int, prev int, acc float64, cur []int32)
		rec = func(tt int, prev int, acc float64, cur []int32) {
			if tt == s.T() {
				if acc > best {
					best = acc
					bestSeq = append([]int32(nil), cur...)
				}
				return
			}
			for y := 0; y < task.L; y++ {
				sc := acc
				for _, f := range s.tokenFeats(tt) {
					sc += w[task.emOff(int(f), y)]
				}
				if tt > 0 {
					sc += w[task.trOff(prev, y)]
				}
				rec(tt+1, y, sc, append(cur, int32(y)))
			}
		}
		rec(0, -1, 0, nil)
		for i := range got {
			if got[i] != bestSeq[i] {
				t.Fatalf("trial %d: viterbi %v, brute force %v", trial, got, bestSeq)
			}
		}
	}
}

func TestCRFEmptySequenceIsNoop(t *testing.T) {
	task := NewCRF(4, 2)
	tp := engine.Tuple{engine.I64(0), engine.IntsV([]int32{0}), engine.IntsV(nil), engine.IntsV(nil)}
	w := vector.NewDense(task.Dim())
	task.Step(&core.DenseModel{W: w}, tp, 0.1)
	if w.Norm2() != 0 {
		t.Fatal("empty sequence changed the model")
	}
	if task.Loss(w, tp) != 0 {
		t.Fatal("empty sequence has nonzero loss")
	}
	if task.Decode(w, tp) != nil {
		t.Fatal("empty sequence decoded to labels")
	}
}

// --- end-to-end sanity: each task actually learns on small data ---

func trainLoss(t *testing.T, task core.Task, tbl *engine.Table, a0 float64, epochs int) (first, last float64) {
	t.Helper()
	tr := &core.Trainer{Task: task, Step: core.DefaultStep(a0), MaxEpochs: epochs, Seed: 42}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	return res.Losses[0], res.FinalLoss()
}

func TestLRLearnsSeparableData(t *testing.T) {
	tbl := engine.NewMemTable("d", DenseExampleSchema)
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 200; i++ {
		y := float64(1)
		off := 2.0
		if i%2 == 0 {
			y, off = -1, -2.0
		}
		x := vector.Dense{off + 0.3*rng.NormFloat64(), rng.NormFloat64()}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(y)})
	}
	first, last := trainLoss(t, NewLR(2), tbl, 0.5, 30)
	if last >= first/4 {
		t.Fatalf("LR failed to learn: first=%g last=%g", first, last)
	}
	// The learned model must separate the data.
	task := NewLR(2)
	tr := &core.Trainer{Task: task, Step: core.DefaultStep(0.5), MaxEpochs: 30, Seed: 42}
	res, _ := tr.Run(tbl)
	correct := 0
	tbl.Scan(func(tp engine.Tuple) error {
		p := task.Predict(res.Model, tp[ColVec])
		if (p > 0.5) == (tp[ColLabel].Float > 0) {
			correct++
		}
		return nil
	})
	if correct < 190 {
		t.Fatalf("LR accuracy %d/200", correct)
	}
}

func TestSVMLearnsSeparableData(t *testing.T) {
	tbl := engine.NewMemTable("d", DenseExampleSchema)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		y := float64(1)
		off := 2.0
		if i%2 == 0 {
			y, off = -1, -2.0
		}
		x := vector.Dense{off + 0.3*rng.NormFloat64(), rng.NormFloat64()}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(y)})
	}
	first, last := trainLoss(t, NewSVM(2), tbl, 0.2, 30)
	if last > first/4+1e-9 {
		t.Fatalf("SVM failed to learn: first=%g last=%g", first, last)
	}
}

func TestLMFRecoversLowRankMatrix(t *testing.T) {
	const rows, cols, rank = 20, 15, 2
	rng := rand.New(rand.NewSource(22))
	L := make([]vector.Dense, rows)
	R := make([]vector.Dense, cols)
	for i := range L {
		L[i] = randDense(rng, rank)
	}
	for j := range R {
		R[j] = randDense(rng, rank)
	}
	tbl := engine.NewMemTable("r", RatingSchema)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.6 {
				tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.I64(int64(j)), engine.F64(vector.Dot(L[i], R[j]))})
			}
		}
	}
	task := NewLMF(rows, cols, rank)
	tr := &core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.05, Rho: 0.99}, MaxEpochs: 150, Seed: 7,
		Order: shuffleOnce{}}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	rmse := math.Sqrt(res.FinalLoss() / float64(tbl.NumRows()))
	if rmse > 0.15 {
		t.Fatalf("LMF rmse = %g (first loss %g, last %g)", rmse, res.Losses[0], res.FinalLoss())
	}
}

// shuffleOnce is a tiny local strategy to avoid importing internal/ordering
// (which would create an import cycle in tests).
type shuffleOnce struct{}

func (shuffleOnce) Name() string { return "once" }
func (shuffleOnce) Prepare(tbl *engine.Table, epoch int, rng *rand.Rand) error {
	if epoch == 0 {
		return tbl.Shuffle(rng)
	}
	return nil
}

func TestKalmanSmoothsNoisySeries(t *testing.T) {
	const T, d = 50, 1
	rng := rand.New(rand.NewSource(23))
	tbl := engine.NewMemTable("s", SeriesSchema)
	truth := make([]float64, T)
	for i := 0; i < T; i++ {
		truth[i] = math.Sin(float64(i) / 5)
		y := truth[i] + 0.3*rng.NormFloat64()
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(vector.Dense{y})})
	}
	task := NewKalman(T, d)
	task.Rho = 4
	tr := &core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.05, Rho: 0.995}, MaxEpochs: 200, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := 0; i < T; i++ {
		d := res.Model[i] - truth[i]
		mse += d * d
	}
	mse /= T
	if mse > 0.05 {
		t.Fatalf("Kalman mse vs truth = %g", mse)
	}
}

func TestCRFLearnsSyntheticTagging(t *testing.T) {
	// Feature f strongly indicates label f%2; transitions discourage staying.
	const F, L = 6, 2
	rng := rand.New(rand.NewSource(24))
	tbl := engine.NewMemTable("seq", SeqSchema)
	for s := 0; s < 60; s++ {
		T := 4 + rng.Intn(5)
		offsets := make([]int32, T+1)
		var feats []int32
		labels := make([]int32, T)
		for tt := 0; tt < T; tt++ {
			f := int32(rng.Intn(F))
			labels[tt] = f % 2
			feats = append(feats, f)
			offsets[tt+1] = int32(len(feats))
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(s)), engine.IntsV(offsets), engine.IntsV(feats), engine.IntsV(labels)})
	}
	task := NewCRF(F, L)
	tr := &core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.2, Rho: 0.95}, MaxEpochs: 30, Seed: 3}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss() >= res.Losses[0]/5 {
		t.Fatalf("CRF failed to learn: first=%g last=%g", res.Losses[0], res.FinalLoss())
	}
	// Decoding accuracy.
	var tot, correct int
	tbl.Scan(func(tp engine.Tuple) error {
		got := task.Decode(res.Model, tp)
		want := tp[3].Ints
		for i := range want {
			tot++
			if got[i] == want[i] {
				correct++
			}
		}
		return nil
	})
	if float64(correct)/float64(tot) < 0.95 {
		t.Fatalf("CRF tagging accuracy %d/%d", correct, tot)
	}
}
