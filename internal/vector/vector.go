// Package vector provides the dense and sparse float64 vector kernels used
// by every gradient computation in Bismarck: dot products, scaled additions
// (the paper's Scale_And_Add), norms, and conversions.
//
// Sparse vectors are stored in coordinate form (sorted index/value pairs),
// matching the "sparse-vector format" the paper uses for DBLife, CoNLL and
// DBLP. Dense vectors are plain []float64.
package vector

import (
	"fmt"
	"math"
	"sort"
)

// Dense is a dense float64 vector.
type Dense []float64

// NewDense returns a zero dense vector of dimension d.
func NewDense(d int) Dense { return make(Dense, d) }

// Dim returns the dimension of v.
func (v Dense) Dim() int { return len(v) }

// Clone returns a copy of v.
func (v Dense) Clone() Dense {
	w := make(Dense, len(v))
	copy(w, v)
	return w
}

// Zero sets every component of v to 0 in place.
func (v Dense) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Dot returns the inner product of two dense vectors of equal dimension.
// The loop is 4-way unrolled with independent accumulators so the FPU adds
// pipeline instead of serializing on one running sum.
func Dot(a, b Dense) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vector: Dot dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy performs w += c*x for dense x (the paper's Scale_And_Add), 4-way
// unrolled like Dot.
func Axpy(w Dense, x Dense, c float64) {
	if len(w) != len(x) {
		panic(fmt.Sprintf("vector: Axpy dimension mismatch %d vs %d", len(w), len(x)))
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		w[i] += c * x[i]
		w[i+1] += c * x[i+1]
		w[i+2] += c * x[i+2]
		w[i+3] += c * x[i+3]
	}
	for ; i < len(x); i++ {
		w[i] += c * x[i]
	}
}

// DotAxpy is the fused IGD step kernel: it computes s = w·x, calls gain(s)
// for the step coefficient — the task's per-example scalar work (sigmoid,
// margin test, residual, per-step shrinkage) runs between the two phases —
// and then performs w += gain(s)·x, returning s. A zero coefficient skips
// the update pass entirely (an SVM example inside the margin costs only the
// dot product). Both loops are the unrolled kernels above; w and x must have
// equal length (callers pre-slice). The gain closure is invoked exactly once
// and must not retain w.
//
//bismarck:noalloc
func DotAxpy(w, x Dense, gain func(dot float64) float64) float64 {
	s := Dot(w, x)
	if c := gain(s); c != 0 {
		Axpy(w, x, c)
	}
	return s
}

// DotAxpySparse is DotAxpy for a sparse example against a dense model:
// s = w·x, then w += gain(s)·x over the stored coordinates only. Indices of
// x beyond the dimension of w are ignored in both phases.
//
//bismarck:noalloc
func DotAxpySparse(w Dense, x Sparse, gain func(dot float64) float64) float64 {
	s := DotSparse(w, x)
	if c := gain(s); c != 0 {
		AxpySparse(w, x, c)
	}
	return s
}

// Scale multiplies every component of w by c in place.
func (v Dense) Scale(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// AddScaled returns nothing; it performs v += c*u where u may be shorter than
// v (extra components of v are untouched). Used by model averaging.
func (v Dense) AddScaled(u Dense, c float64) {
	for i, ui := range u {
		v[i] += c * ui
	}
}

// Norm2 returns the Euclidean norm of v.
func (v Dense) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func (v Dense) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the max-abs norm of v.
func (v Dense) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b Dense) float64 {
	if len(a) != len(b) {
		panic("vector: Dist2 dimension mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sparse is a sparse vector in coordinate form. Idx is sorted ascending and
// has no duplicates; Val[i] is the value at dimension Idx[i].
type Sparse struct {
	Idx []int32
	Val []float64
}

// NewSparse builds a sparse vector from parallel index/value slices, sorting
// and deduplicating (later duplicates win). It copies its inputs.
func NewSparse(idx []int32, val []float64) Sparse {
	if len(idx) != len(val) {
		panic("vector: NewSparse len(idx) != len(val)")
	}
	type pair struct {
		i int32
		v float64
	}
	ps := make([]pair, len(idx))
	for k := range idx {
		ps[k] = pair{idx[k], val[k]}
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].i < ps[b].i })
	out := Sparse{Idx: make([]int32, 0, len(ps)), Val: make([]float64, 0, len(ps))}
	for _, p := range ps {
		if n := len(out.Idx); n > 0 && out.Idx[n-1] == p.i {
			out.Val[n-1] = p.v
			continue
		}
		out.Idx = append(out.Idx, p.i)
		out.Val = append(out.Val, p.v)
	}
	return out
}

// NNZ returns the number of stored (non-zero) entries.
func (s Sparse) NNZ() int { return len(s.Idx) }

// MaxIdx returns the largest stored index plus one (a lower bound on the
// dimension), or 0 for an empty vector.
func (s Sparse) MaxIdx() int {
	if len(s.Idx) == 0 {
		return 0
	}
	return int(s.Idx[len(s.Idx)-1]) + 1
}

// Clone returns a deep copy of s.
func (s Sparse) Clone() Sparse {
	return Sparse{
		Idx: append([]int32(nil), s.Idx...),
		Val: append([]float64(nil), s.Val...),
	}
}

// DotSparse returns the inner product of a dense vector w and a sparse
// vector x. Indices of x beyond the dimension of w contribute zero. Because
// Idx is sorted ascending, checking the last index once replaces the
// per-element range test on the common all-in-range path.
func DotSparse(w Dense, x Sparse) float64 {
	n := len(x.Idx)
	if n == 0 {
		return 0
	}
	var s float64
	if int(x.Idx[n-1]) < len(w) {
		for k, i := range x.Idx {
			s += w[i] * x.Val[k]
		}
		return s
	}
	d := len(w)
	for k, i := range x.Idx {
		if int(i) < d {
			s += w[i] * x.Val[k]
		}
	}
	return s
}

// AxpySparse performs w += c*x for sparse x. Indices beyond the dimension of
// w are ignored; the sorted-index fast path mirrors DotSparse.
func AxpySparse(w Dense, x Sparse, c float64) {
	n := len(x.Idx)
	if n == 0 {
		return
	}
	if int(x.Idx[n-1]) < len(w) {
		for k, i := range x.Idx {
			w[i] += c * x.Val[k]
		}
		return
	}
	d := len(w)
	for k, i := range x.Idx {
		if int(i) < d {
			w[i] += c * x.Val[k]
		}
	}
}

// Norm2 returns the Euclidean norm of the sparse vector.
func (s Sparse) Norm2() float64 {
	var t float64
	for _, v := range s.Val {
		t += v * v
	}
	return math.Sqrt(t)
}

// ToDense expands s into a dense vector of dimension d. Entries at or beyond
// d are dropped.
func (s Sparse) ToDense(d int) Dense {
	w := NewDense(d)
	for k, i := range s.Idx {
		if int(i) < d {
			w[i] = s.Val[k]
		}
	}
	return w
}

// FromDense converts a dense vector into sparse form, keeping entries whose
// absolute value exceeds eps.
func FromDense(v Dense, eps float64) Sparse {
	var s Sparse
	for i, x := range v {
		if math.Abs(x) > eps {
			s.Idx = append(s.Idx, int32(i))
			s.Val = append(s.Val, x)
		}
	}
	return s
}
