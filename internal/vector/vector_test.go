package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotBasic(t *testing.T) {
	a := Dense{1, 2, 3}
	b := Dense{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot(Dense{1}, Dense{1, 2})
}

func TestAxpy(t *testing.T) {
	w := Dense{1, 1, 1}
	Axpy(w, Dense{1, 2, 3}, 2)
	want := Dense{3, 5, 7}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", w, want)
		}
	}
}

func TestNorms(t *testing.T) {
	v := Dense{3, -4}
	if got := v.Norm2(); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.Norm1(); !almostEq(got, 7, 1e-12) {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); !almostEq(got, 4, 1e-12) {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestDist2(t *testing.T) {
	if got := Dist2(Dense{0, 0}, Dense{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Dist2 = %v, want 5", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Dense{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestZero(t *testing.T) {
	v := Dense{1, 2, 3}
	v.Zero()
	for _, x := range v {
		if x != 0 {
			t.Fatal("Zero left a non-zero component")
		}
	}
}

func TestScale(t *testing.T) {
	v := Dense{1, -2}
	v.Scale(-3)
	if v[0] != -3 || v[1] != 6 {
		t.Fatalf("Scale = %v", v)
	}
}

func TestAddScaledShorter(t *testing.T) {
	v := Dense{1, 1, 1}
	v.AddScaled(Dense{2, 2}, 0.5)
	if v[0] != 2 || v[1] != 2 || v[2] != 1 {
		t.Fatalf("AddScaled = %v", v)
	}
}

func TestNewSparseSortsAndDedups(t *testing.T) {
	s := NewSparse([]int32{5, 1, 5, 3}, []float64{50, 10, 55, 30})
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ())
	}
	wantIdx := []int32{1, 3, 5}
	wantVal := []float64{10, 30, 55} // later duplicate wins
	for k := range wantIdx {
		if s.Idx[k] != wantIdx[k] || s.Val[k] != wantVal[k] {
			t.Fatalf("sparse = %+v", s)
		}
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	s := NewSparse([]int32{0, 2, 4}, []float64{1, -2, 3})
	d := s.ToDense(5)
	back := FromDense(d, 0)
	if back.NNZ() != 3 {
		t.Fatalf("round trip NNZ = %d", back.NNZ())
	}
	for k := range s.Idx {
		if back.Idx[k] != s.Idx[k] || back.Val[k] != s.Val[k] {
			t.Fatalf("round trip mismatch: %+v vs %+v", back, s)
		}
	}
}

func TestDotSparseMatchesDense(t *testing.T) {
	w := Dense{1, 2, 3, 4}
	x := NewSparse([]int32{1, 3}, []float64{10, -1})
	want := Dot(w, x.ToDense(4))
	if got := DotSparse(w, x); !almostEq(got, want, 1e-12) {
		t.Fatalf("DotSparse = %v, want %v", got, want)
	}
}

func TestDotSparseIgnoresOutOfRange(t *testing.T) {
	w := Dense{1, 1}
	x := NewSparse([]int32{0, 9}, []float64{5, 100})
	if got := DotSparse(w, x); got != 5 {
		t.Fatalf("DotSparse = %v, want 5", got)
	}
}

func TestAxpySparseMatchesDense(t *testing.T) {
	w := Dense{1, 1, 1}
	x := NewSparse([]int32{0, 2}, []float64{1, 2})
	AxpySparse(w, x, 3)
	want := Dense{4, 1, 7}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("AxpySparse = %v, want %v", w, want)
		}
	}
}

func TestSparseMaxIdx(t *testing.T) {
	if got := (Sparse{}).MaxIdx(); got != 0 {
		t.Fatalf("empty MaxIdx = %d", got)
	}
	s := NewSparse([]int32{7}, []float64{1})
	if got := s.MaxIdx(); got != 8 {
		t.Fatalf("MaxIdx = %d, want 8", got)
	}
}

func TestSparseCloneIndependence(t *testing.T) {
	s := NewSparse([]int32{1}, []float64{2})
	c := s.Clone()
	c.Val[0] = 99
	if s.Val[0] != 2 {
		t.Fatal("Clone must not alias")
	}
}

// Property: Dot is symmetric and bilinear-ish under scaling.
func TestQuickDotSymmetric(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		n := len(xs) / 2
		a, b := Dense(xs[:n]), Dense(xs[n:2*n])
		d1, d2 := Dot(a, b), Dot(b, a)
		if math.IsNaN(d1) || math.IsInf(d1, 0) {
			return true // degenerate random input
		}
		return almostEq(d1, d2, 1e-9*(1+math.Abs(d1)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= |a||b|.
func TestQuickCauchySchwarz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(32)
		a, b := NewDense(n), NewDense(n)
		for i := 0; i < n; i++ {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		if math.Abs(Dot(a, b)) > a.Norm2()*b.Norm2()+1e-9 {
			t.Fatalf("Cauchy-Schwarz violated at trial %d", trial)
		}
	}
}

// Property: DotSparse(w, x) == Dot(w, dense(x)) for any sparse x in range.
func TestQuickDotSparseConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(64)
		w := NewDense(d)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		nnz := rng.Intn(d)
		idx := make([]int32, nnz)
		val := make([]float64, nnz)
		for k := 0; k < nnz; k++ {
			idx[k] = int32(rng.Intn(d))
			val[k] = rng.NormFloat64()
		}
		s := NewSparse(idx, val)
		want := Dot(w, s.ToDense(d))
		if got := DotSparse(w, s); !almostEq(got, want, 1e-9*(1+math.Abs(want))) {
			t.Fatalf("trial %d: DotSparse=%v want %v", trial, got, want)
		}
	}
}

// Property: NewSparse output is sorted strictly ascending.
func TestQuickNewSparseSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		idx := make([]int32, len(raw))
		val := make([]float64, len(raw))
		for i, r := range raw {
			idx[i] = int32(r)
			val[i] = float64(i)
		}
		s := NewSparse(idx, val)
		for k := 1; k < len(s.Idx); k++ {
			if s.Idx[k-1] >= s.Idx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVectorKernels(b *testing.B) {
	const d = 1024
	w := NewDense(d)
	x := NewDense(d)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < d; i++ {
		w[i], x[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	sp := FromDense(x, 1.5) // keep ~13% of entries
	b.Run("DenseDot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Dot(w, x)
		}
	})
	b.Run("DenseAxpy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Axpy(w, x, 1e-9)
		}
	})
	b.Run("SparseDot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = DotSparse(w, sp)
		}
	})
	b.Run("SparseAxpy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AxpySparse(w, sp, 1e-9)
		}
	})
}
